"""A deterministic metrics registry: counters, gauges, histograms.

The registry is deliberately minimal and **deterministic**:

* **Counters** are exact integer/float accumulators (``store.hits``,
  ``sweep.cells_failed``); incrementing is commutative, so the same
  events produce the same totals whatever order workers finish in.
* **Gauges** are last-write-wins point-in-time values.
* **Histograms** have *fixed* bucket boundaries chosen at creation
  (defaulting to log-spaced second scales), so two registries observing
  the same values always bucket them identically and can be merged
  bucket by bucket.

**Jobs invariance.**  The parallel engine has every pool worker buffer
its task's metric events in a local registry, ships the buffer back
with the task result, and merges the buffers into the parent registry
in *task-index order* (see ``repro.experiments.parallel.run_tasks``).
A serial run records the same per-task events directly, also in task
order — so count aggregates are identical for any ``jobs`` value, and
even float accumulation happens in one canonical order.

Wall-clock *values* (histogram sums of durations) naturally vary run to
run; :meth:`MetricsRegistry.counts` exposes the deterministic view —
counter totals and per-histogram observation counts — which the test
battery pins across ``jobs``/shard/resume patterns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram boundaries: log-spaced second scales.  A value v
#: lands in the first bucket whose boundary is >= v; values above the
#: last boundary land in the implicit +inf bucket.
DEFAULT_BUCKETS = (0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 60.0)


@dataclass
class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max."""

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        self.buckets = tuple(float(b) for b in self.buckets)
        if list(self.buckets) != sorted(set(self.buckets)):
            raise ValueError("histogram buckets must be strictly increasing")
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)
        elif len(self.counts) != len(self.buckets) + 1:
            raise ValueError("counts must have len(buckets) + 1 entries")

    def observe(self, value: float) -> None:
        value = float(value)
        i = 0
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                break
        else:
            i = len(self.buckets)
        self.counts[i] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if other.buckets != self.buckets:
            raise ValueError(
                f"cannot merge histograms with different buckets "
                f"({self.buckets} vs {other.buckets})"
            )
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(
                self.min, other.min
            )
        if other.max is not None:
            self.max = other.max if self.max is None else max(
                self.max, other.max
            )

    def to_payload(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }

    @staticmethod
    def from_payload(payload: dict) -> "Histogram":
        return Histogram(
            buckets=tuple(payload["buckets"]),
            counts=list(payload["counts"]),
            count=int(payload["count"]),
            total=float(payload["total"]),
            min=payload["min"],
            max=payload["max"],
        )


class MetricsRegistry:
    """Named counters, gauges and histograms (see the module docstring)."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def __bool__(self) -> bool:
        return bool(self.counters or self.gauges or self.histograms)

    # -- recording ------------------------------------------------------
    def inc(self, name: str, n: "int | float" = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(
        self, name: str, value: float, buckets: tuple | None = None
    ) -> None:
        """Record ``value`` into histogram ``name``.

        ``buckets`` fixes the boundaries when the histogram is first
        created; later calls must agree (or omit them).
        """
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram(
                buckets=buckets if buckets is not None else DEFAULT_BUCKETS
            )
        elif buckets is not None and tuple(
            float(b) for b in buckets
        ) != hist.buckets:
            raise ValueError(
                f"histogram {name!r} already exists with different buckets"
            )
        hist.observe(value)

    # -- merging --------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry, in sorted-name order (so
        float accumulation is canonical whatever dict fill order the
        sources had)."""
        for name in sorted(other.counters):
            self.inc(name, other.counters[name])
        for name in sorted(other.gauges):
            self.set_gauge(name, other.gauges[name])
        for name in sorted(other.histograms):
            theirs = other.histograms[name]
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = Histogram.from_payload(
                    theirs.to_payload()
                )
            else:
                mine.merge(theirs)

    def merge_payload(self, payload: dict) -> None:
        """Fold a :meth:`to_payload` blob (a pool worker's shipped
        buffer) into this registry."""
        other = MetricsRegistry.from_payload(payload)
        self.merge(other)

    # -- export ---------------------------------------------------------
    def to_payload(self) -> dict:
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].to_payload()
                for k in sorted(self.histograms)
            },
        }

    @staticmethod
    def from_payload(payload: dict) -> "MetricsRegistry":
        reg = MetricsRegistry()
        reg.counters = dict(payload.get("counters", {}))
        reg.gauges = dict(payload.get("gauges", {}))
        reg.histograms = {
            k: Histogram.from_payload(v)
            for k, v in payload.get("histograms", {}).items()
        }
        return reg

    def snapshot(self) -> dict:
        """The full JSON-able state, deterministically key-sorted."""
        return self.to_payload()

    def counts(self) -> dict:
        """The deterministic view: counter totals plus per-histogram
        observation counts (never timing-dependent values) — what the
        determinism battery compares across ``jobs``/shard/resume."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "observations": {
                k: self.histograms[k].count
                for k in sorted(self.histograms)
            },
        }
