"""Aggregate a recorded trace into a per-span-kind summary table.

``repro trace summarize out.jsonl`` renders, for every span kind, the
span count, total and mean duration, and nearest-rank p50/p99/max — the
quick answer to "where did this sweep spend its time".  Event spans
(``status == "event"``, e.g. ``warning.jobs_fallback``) are counted
separately since their durations are definitionally zero.
"""

from __future__ import annotations

import math
from pathlib import Path

from repro.obs.trace import Span, load_trace
from repro.util.fmt import format_table

__all__ = [
    "percentile",
    "summarize_spans",
    "render_trace_summary",
    "render_metrics",
]


def percentile(sorted_values: list[float], q: float) -> float:
    """Exact nearest-rank percentile of an ascending list (q in [0, 1]).

    The rank is ``ceil(q * n)`` computed on the *exact* quantile, so a
    p99.9 request (``q = 0.999``) selects rank ``ceil(0.999 n)`` rather
    than silently collapsing to p99 the way a truncated integer percent
    would.  ``q = 0`` returns the minimum, ``q = 1`` the maximum.
    """
    if not sorted_values:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q!r}")
    rank = max(1, math.ceil(q * len(sorted_values)))
    return sorted_values[min(rank, len(sorted_values)) - 1]


#: Deprecated private alias (the shared helper is :func:`percentile`).
_percentile = percentile


def summarize_spans(spans: list[Span]) -> list[dict]:
    """Per-kind aggregates, sorted by total duration (descending) then
    kind — one dict per span kind."""
    by_kind: dict[str, list[Span]] = {}
    for span in spans:
        by_kind.setdefault(span.kind, []).append(span)
    out = []
    for kind, group in by_kind.items():
        durations = sorted(s.duration_s for s in group)
        total = sum(durations)
        out.append({
            "kind": kind,
            "count": len(group),
            "errors": sum(1 for s in group if s.status == "error"),
            "events": sum(1 for s in group if s.status == "event"),
            "total_s": total,
            "mean_s": total / len(group),
            "p50_s": percentile(durations, 0.50),
            "p99_s": percentile(durations, 0.99),
            "max_s": durations[-1],
        })
    out.sort(key=lambda row: (-row["total_s"], row["kind"]))
    return out


def render_trace_summary(source: "str | Path") -> str:
    """Load a JSONL trace and render the summary table."""
    meta, spans = load_trace(source)
    if not spans:
        return f"{source}: empty trace (no spans)"
    rows = [
        [
            r["kind"],
            r["count"],
            r["errors"] or "-",
            f"{r['total_s']:.4f}",
            f"{r['mean_s']:.6f}",
            f"{r['p50_s']:.6f}",
            f"{r['p99_s']:.6f}",
            f"{r['max_s']:.6f}",
        ]
        for r in summarize_spans(spans)
    ]
    version = meta.get("repro_version", "?")
    return format_table(
        ["kind", "count", "errors", "total [s]", "mean [s]", "p50 [s]",
         "p99 [s]", "max [s]"],
        rows,
        title=(
            f"Trace summary: {len(spans)} spans from {source} "
            f"(repro {version})"
        ),
    )


def render_metrics(registry) -> str:
    """Render a session registry's aggregates as one ASCII table.

    Counters print their exact totals; histograms print observation
    count, total and mean; gauges their last value.  Empty registries
    render a one-line notice so ``--metrics`` output is never silent.
    """
    rows = []
    for name in sorted(registry.counters):
        value = registry.counters[name]
        rows.append([name, "counter", f"{value:g}", "-", "-"])
    for name in sorted(registry.gauges):
        rows.append(
            [name, "gauge", f"{registry.gauges[name]:g}", "-", "-"]
        )
    for name in sorted(registry.histograms):
        h = registry.histograms[name]
        mean = h.total / h.count if h.count else 0.0
        rows.append([
            name, "histogram", str(h.count), f"{h.total:.4f}",
            f"{mean:.6f}",
        ])
    if not rows:
        return "metrics: no events recorded"
    return format_table(
        ["metric", "type", "count/value", "total", "mean"], rows,
        title="Session metrics",
    )
