"""Hierarchical span tracing with a JSONL sink.

A :class:`Tracer` records **spans** — named, attributed intervals with
monotonic-clock durations and parent/child links — into an in-process
buffer that is flushed to one JSON-Lines file at session exit (see
:mod:`repro.obs.session`).  Spans nest through an explicit stack: the
span open when a new one starts becomes its parent, so a traced sweep
reads as a tree (``sweep.run`` > ``sweep.cell`` > ``solver.run`` >
``refine.run`` > ...).

Tracing is strictly **out of band**: nothing a span records — ids,
timestamps, durations — ever feeds back into solver decisions, reports
or fingerprints, so a traced run's canonical outputs are byte-identical
to an untraced run's.

The JSONL schema (``TRACE_SCHEMA_VERSION``):

* line 1 — a meta record ``{"trace_schema": 1, "repro_version": ...}``;
* every other line — one span::

      {"span": <int id>, "parent": <int id or null>, "kind": "...",
       "ts": <wall-clock start>, "duration_s": <monotonic duration>,
       "status": "ok" | "error" | "event", "attrs": {...}}

Span ids are unique and contiguous within one trace; spans shipped back
from pool workers are re-identified on absorption (see
:meth:`Tracer.absorb`), so a merged trace is still a single consistent
tree.  Spans are buffered in *close* order (children before parents),
which keeps the file append-only and deterministic for a deterministic
control flow.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.util.io import atomic_write_text
from repro.util.version import repro_version

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "span_to_payload",
    "span_from_payload",
    "load_trace",
]

#: Version of the JSONL span layout; bump on any structural change.
TRACE_SCHEMA_VERSION = 1


@dataclass
class Span:
    """One finished (or instantaneous) span."""

    span_id: int
    parent_id: int | None
    kind: str
    ts: float  # wall-clock start (time.time), for humans only
    duration_s: float  # monotonic-clock duration
    status: str = "ok"  # "ok" | "error" | "event"
    attrs: dict = field(default_factory=dict)


def span_to_payload(span: Span) -> dict:
    return {
        "span": span.span_id,
        "parent": span.parent_id,
        "kind": span.kind,
        "ts": span.ts,
        "duration_s": span.duration_s,
        "status": span.status,
        "attrs": span.attrs,
    }


def span_from_payload(payload: dict) -> Span:
    return Span(
        span_id=int(payload["span"]),
        parent_id=(
            None if payload["parent"] is None else int(payload["parent"])
        ),
        kind=str(payload["kind"]),
        ts=float(payload["ts"]),
        duration_s=float(payload["duration_s"]),
        status=str(payload["status"]),
        attrs=dict(payload["attrs"]),
    )


class _OpenSpan:
    """Context manager for one in-flight span (returned by
    :meth:`Tracer.span`); re-entry is not supported."""

    __slots__ = ("_tracer", "_span", "_t0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._t0 = time.perf_counter()
        self._tracer._stack.append(self._span.span_id)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._span.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self._span.status = "error"
        self._tracer._stack.pop()
        self._tracer.spans.append(self._span)
        return False  # never swallow


class Tracer:
    """An in-process span buffer (one per observability session)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[int] = []
        self._next_id = 1

    # -- recording ------------------------------------------------------
    def current_id(self) -> int | None:
        """The id of the innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def span(self, kind: str, attrs: dict | None = None) -> _OpenSpan:
        """Open a span; use as a context manager."""
        sid = self._next_id
        self._next_id += 1
        return _OpenSpan(self, Span(
            span_id=sid,
            parent_id=self.current_id(),
            kind=kind,
            ts=time.time(),
            duration_s=0.0,
            attrs=dict(attrs or {}),
        ))

    def event(self, kind: str, attrs: dict | None = None) -> Span:
        """Record an instantaneous event (a zero-duration span)."""
        sid = self._next_id
        self._next_id += 1
        span = Span(
            span_id=sid,
            parent_id=self.current_id(),
            kind=kind,
            ts=time.time(),
            duration_s=0.0,
            status="event",
            attrs=dict(attrs or {}),
        )
        self.spans.append(span)
        return span

    # -- merging (pool workers ship serialized spans back) --------------
    def absorb(self, payloads: list[dict]) -> None:
        """Merge spans exported by another tracer (a pool worker's
        per-task buffer) into this one.

        Ids are remapped onto this tracer's sequence; parent links
        *within* the batch are preserved, and the batch's top-level
        spans are adopted by the span currently open here — so a
        worker's ``sweep.cell`` subtree hangs off the parent's
        ``sweep.run`` exactly as it would have serially.
        """
        remap: dict[int, int] = {}
        adopt = self.current_id()
        for payload in payloads:
            span = span_from_payload(payload)
            new_id = self._next_id
            self._next_id += 1
            remap[span.span_id] = new_id
            span.span_id = new_id
            if span.parent_id is None:
                span.parent_id = adopt
            else:
                # Children are buffered before their parents, so a
                # child's parent may not be remapped yet; resolve in a
                # second pass below.
                span.parent_id = -span.parent_id
            self.spans.append(span)
        for span in self.spans[-len(payloads):]:
            if span.parent_id is not None and span.parent_id < 0:
                span.parent_id = remap.get(-span.parent_id, adopt)

    # -- export ---------------------------------------------------------
    def export(self) -> list[dict]:
        """All buffered spans as JSON payloads (buffer order)."""
        return [span_to_payload(s) for s in self.spans]

    def to_jsonl(self) -> str:
        """The full JSONL document (meta line + one line per span)."""
        lines = [json.dumps(
            {
                "trace_schema": TRACE_SCHEMA_VERSION,
                "repro_version": repro_version(),
                "spans": len(self.spans),
            },
            sort_keys=True,
        )]
        lines.extend(
            json.dumps(p, sort_keys=True) for p in self.export()
        )
        return "\n".join(lines) + "\n"

    def write_jsonl(self, path: "str | Path") -> Path:
        """Atomically write the trace to ``path``."""
        return atomic_write_text(path, self.to_jsonl())


def load_trace(source: "str | Path") -> tuple[dict, list[Span]]:
    """Parse a JSONL trace file into ``(meta, spans)``.

    Lines that are not valid span records raise ``ValueError`` with the
    offending line number; a missing meta line is tolerated (``meta``
    comes back empty) so concatenated traces still summarize.
    """
    meta: dict = {}
    spans: list[Span] = []
    with open(source) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{source}:{lineno}: not valid JSON: {exc}"
                ) from None
            if "trace_schema" in payload:
                meta = payload
                continue
            try:
                spans.append(span_from_payload(payload))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{source}:{lineno}: not a span record: {exc!r}"
                ) from None
    return meta, spans
