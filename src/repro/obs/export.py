"""Trace and profile export: Chrome trace-event JSON, collapsed stacks.

Two interchange formats turn recordings into things existing viewers
open directly:

* **Chrome trace-event JSON** (:func:`to_chrome_trace` /
  :func:`write_chrome_trace`): the ``{"traceEvents": [...]}`` document
  understood by ``ui.perfetto.dev`` and ``chrome://tracing``.  Every
  span becomes one complete (``"ph": "X"``) event; timestamps are
  re-derived from the span *tree* (children laid out inside their
  parent in buffer order), so a trace absorbed from many pool workers —
  whose wall clocks are unrelated — still renders as one strictly
  nested timeline per root.  CLI: ``repro trace export out.jsonl
  --format chrome``.
* **Collapsed stacks** (:func:`to_collapsed_stacks` for span trees,
  :func:`pstats_to_collapsed` for the PR-7 ``cProfile`` dumps): the
  ``a;b;c <value>`` lines flamegraph.pl / speedscope / inferno consume.
  Span stacks carry exact self-time microseconds; ``pstats`` stacks are
  the standard caller-edge *approximation* (cProfile keeps caller/callee
  edges, not full stacks), documented as such.  CLI: ``repro trace
  export out.jsonl --format collapsed`` and ``repro profile flame DIR``.

Exports are derived views: they read a finished recording and never
touch recording itself or any canonical output.
"""

from __future__ import annotations

import json
import pstats
from pathlib import Path

from repro.obs.trace import Span, load_trace
from repro.util.io import atomic_write_text

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_collapsed_stacks",
    "pstats_to_collapsed",
    "export_trace",
]


def _nested_timeline(spans: list[Span]) -> dict[int, float]:
    """Synthetic start times (seconds) laying the span tree out as one
    strictly nested timeline.

    Roots are placed end to end in buffer order; each span's children
    are placed end to end from their parent's start.  Absolute wall
    clocks are discarded on purpose: spans absorbed from pool workers
    carry *their* processes' clocks, which need not nest inside the
    parent's, and trace viewers reject (or silently mis-render)
    non-nested complete events on one track.  Durations are preserved
    exactly; only the placement is synthetic.
    """
    from repro.obs.analyze import span_tree

    _, children = span_tree(spans)
    starts: dict[int, float] = {}

    def place(span: Span, start: float) -> None:
        starts[span.span_id] = start
        cursor = start
        for child in children.get(span.span_id, ()):
            place(child, cursor)
            cursor += child.duration_s

    cursor = 0.0
    for root in children.get(None, ()):
        place(root, cursor)
        cursor += root.duration_s
    return starts


def to_chrome_trace(
    meta: dict, spans: list[Span], process_name: str = "repro"
) -> dict:
    """Build the Chrome trace-event document for one recording."""
    starts = _nested_timeline(spans)
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": process_name},
    }]
    for s in spans:
        args = {"span": s.span_id, "parent": s.parent_id, **s.attrs}
        if s.status == "event":
            events.append({
                "name": s.kind,
                "cat": s.kind.split(".", 1)[0],
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "ts": round(starts[s.span_id] * 1e6, 3),
                "pid": 0,
                "tid": 0,
                "args": args,
            })
            continue
        if s.status == "error":
            args["error"] = True
        events.append({
            "name": s.kind,
            "cat": s.kind.split(".", 1)[0],
            "ph": "X",
            "ts": round(starts[s.span_id] * 1e6, 3),
            "dur": round(s.duration_s * 1e6, 3),
            "pid": 0,
            "tid": 0,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "trace_schema": meta.get("trace_schema"),
            "repro_version": meta.get("repro_version"),
            "spans": len(spans),
            "note": (
                "timestamps are tree-derived (durations exact, "
                "placement synthetic) so multi-worker traces nest"
            ),
        },
    }


def write_chrome_trace(
    source: "str | Path", target: "str | Path"
) -> Path:
    """Convert a JSONL trace file into a Chrome trace JSON file."""
    meta, spans = load_trace(source)
    doc = to_chrome_trace(meta, spans)
    return atomic_write_text(
        target, json.dumps(doc, sort_keys=True) + "\n"
    )


def to_collapsed_stacks(spans: list[Span]) -> str:
    """Flamegraph text from a span tree: ``root;child;leaf <self_us>``.

    One line per distinct kind-stack with its aggregated self time in
    integer microseconds (zero-duration event spans contribute their
    stack with value 0, which flamegraph tools ignore).  Lines are
    sorted for deterministic output.
    """
    from repro.obs.analyze import self_times, span_tree

    selfs = self_times(spans)
    by_id, _ = span_tree(spans)
    totals: dict[str, float] = {}
    for s in spans:
        frames = [s.kind]
        parent = s.parent_id
        # Walk to the root; dangling parents (truncated traces) just
        # terminate the stack early.
        while parent is not None and parent in by_id:
            node = by_id[parent]
            frames.append(node.kind)
            parent = node.parent_id
        stack = ";".join(reversed(frames))
        totals[stack] = totals.get(stack, 0.0) + selfs[s.span_id]
    lines = [
        f"{stack} {int(round(value * 1e6))}"
        for stack, value in sorted(totals.items())
    ]
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# pstats -> collapsed stacks (flamegraph from cProfile dumps)
# ----------------------------------------------------------------------
def _func_label(func: tuple) -> str:
    filename, lineno, name = func
    if filename == "~":  # built-ins
        return name.strip("<>")
    return f"{Path(filename).name}:{lineno}:{name}"


def pstats_to_collapsed(
    stats: "pstats.Stats | str | Path", max_depth: int = 48
) -> str:
    """Approximate collapsed stacks from a ``pstats`` profile.

    ``cProfile`` records caller->callee *edges* (with per-edge
    cumulative time), not full call stacks, so exact stacks are
    unrecoverable; like flameprof, this walks the call graph from the
    roots, attributing each function's self time to the current path
    and descending into callees proportionally to their per-edge
    cumulative times.  Recursion is cut by refusing to revisit a frame
    already on the path; values are integer microseconds.
    """
    if not isinstance(stats, pstats.Stats):
        stats = pstats.Stats(str(stats))
    raw = stats.stats  # func -> (cc, nc, tt, ct, callers)
    callees: dict[tuple, list[tuple[tuple, float]]] = {}
    total_in: dict[tuple, float] = {}
    for func, (_cc, _nc, _tt, _ct, callers) in raw.items():
        for caller, edge in callers.items():
            edge_ct = edge[3]
            callees.setdefault(caller, []).append((func, edge_ct))
            total_in[func] = total_in.get(func, 0.0) + edge_ct

    totals: dict[str, float] = {}

    def emit(func: tuple, path: tuple, share: float) -> None:
        _cc, _nc, tt, ct, _callers = raw[func]
        label = _func_label(func)
        stack = ";".join(path + (label,))
        if ct > 0:
            self_here = share * (tt / ct)
        else:  # pragma: no cover - zero-cost frames
            self_here = share
        if self_here > 0:
            totals[stack] = totals.get(stack, 0.0) + self_here
        if len(path) + 1 >= max_depth:
            return
        for callee, edge_ct in sorted(
            callees.get(func, ()), key=lambda e: _func_label(e[0])
        ):
            callee_label = _func_label(callee)
            if callee_label in path or callee_label == label:
                continue  # cycle: stop rather than double-count
            if ct <= 0 or edge_ct <= 0:
                continue
            emit(callee, path + (label,), share * (edge_ct / ct))

    roots = [func for func in raw if not raw[func][4]]
    for func in sorted(roots, key=_func_label):
        emit(func, (), raw[func][3])
    lines = [
        f"{stack} {int(round(value * 1e6))}"
        for stack, value in sorted(totals.items())
        if int(round(value * 1e6)) > 0
    ]
    return "\n".join(lines) + "\n" if lines else ""


def export_trace(
    source: "str | Path", fmt: str, target: "str | Path | None" = None
) -> "Path | str":
    """CLI backend for ``repro trace export``: convert ``source`` to
    ``fmt`` (``chrome`` or ``collapsed``), writing to ``target`` when
    given, returning the rendered text otherwise."""
    if fmt == "chrome":
        if target is None:
            meta, spans = load_trace(source)
            return json.dumps(
                to_chrome_trace(meta, spans), sort_keys=True
            ) + "\n"
        return write_chrome_trace(source, target)
    if fmt == "collapsed":
        _meta, spans = load_trace(source)
        text = to_collapsed_stacks(spans)
        if target is None:
            return text
        return atomic_write_text(target, text)
    raise ValueError(f"unknown export format {fmt!r} "
                     f"(expected 'chrome' or 'collapsed')")
