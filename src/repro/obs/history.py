"""Benchmark history and the perf-regression sentinel.

The ROADMAP's "keep the speedup trajectory monotone" contract was
enforced by eyeballing ``BENCH_perf_core.json``; this module makes it a
command CI runs:

* **History.**  Every benchmark script appends the sections it just
  merged into ``BENCH_perf_core.json`` to a schema-versioned JSONL log,
  ``BENCH_history.jsonl`` (one line per bench run, via
  ``benchmarks/_common.merge_bench_sections``).  Commit id and
  timestamp are *injected by the caller* — this module never reads the
  clock or the git tree itself, so nothing here can leak
  nondeterminism into paths that import it.
* **Sentinel.**  :func:`check_bench` compares the current
  ``BENCH_perf_core.json`` against the recorded floors and the last
  distinct history entry.  ``repro bench check`` exits 1 on regression.

Tracked metrics and their floors (see ``ROADMAP.md``):

========  =====================================  =====  =========
metric    section path                           floor  basis
========  =====================================  =====  =========
fig10     ``fig10_panel.speedup_vs_seed``        3.7x   baseline
refine    ``refine.speedup``                     5x     ratio
store     ``store.speedup``                      5x     ratio
dpa1d     ``dpa1d.speedup_geomean``              3x     ratio
========  =====================================  =====  =========

``ratio`` metrics divide two timings measured on the *same* host in
the same run, so their floors hold on any machine and are enforced
absolutely.  ``baseline`` metrics divide by a wall-clock recorded once
on the seed machine; on a slower host class the quotient conflates
code speed with machine speed, so the floor is enforced as a
*trajectory* gate — it trips when the value falls below a floor the
history had met — and the tolerance band against the last distinct
run is the binding check everywhere.  Either way a regression is a
nonzero exit, which is all CI needs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.util.fmt import format_table
from repro.util.version import repro_version

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "BenchMetric",
    "METRICS",
    "append_history",
    "load_history",
    "extract_metrics",
    "check_bench",
    "render_check",
    "render_history",
]

#: Version of the history-line layout; bump on structural change.
HISTORY_SCHEMA_VERSION = 1

#: Default fractional tolerance band vs the last distinct run.
DEFAULT_TOLERANCE = 0.2


@dataclass(frozen=True)
class BenchMetric:
    """One tracked benchmark metric.

    ``path`` walks ``BENCH_perf_core.json``; ``basis`` is ``"ratio"``
    (same-host quotient, floor absolute) or ``"baseline"`` (quotient
    over a seed-machine wall clock, floor enforced as a trajectory
    gate — see the module docstring).
    """

    name: str
    path: tuple[str, ...]
    floor: float
    basis: str = "ratio"

    def extract(self, bench: dict) -> float | None:
        node: object = bench
        for key in self.path:
            if not isinstance(node, dict) or key not in node:
                return None
            node = node[key]
        try:
            return float(node)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            return None


#: The tracked metrics, in report order.
METRICS: tuple[BenchMetric, ...] = (
    BenchMetric("fig10", ("fig10_panel", "speedup_vs_seed"), 3.7,
                basis="baseline"),
    BenchMetric("refine", ("refine", "speedup"), 5.0),
    BenchMetric("store", ("store", "speedup"), 5.0),
    BenchMetric("dpa1d", ("dpa1d", "speedup_geomean"), 3.0),
)


# ----------------------------------------------------------------------
# History log
# ----------------------------------------------------------------------
def append_history(
    sections: dict,
    path: "str | Path",
    commit: str | None = None,
    timestamp: float | None = None,
) -> Path:
    """Append one history line recording ``sections``.

    ``commit`` and ``timestamp`` come from the caller (the benchmark
    scripts, which *are* allowed to ask git and the clock); ``None``
    records ``null``.  The file is append-only JSONL so concurrent
    bench runs at worst interleave whole lines.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    entry = {
        "history_schema": HISTORY_SCHEMA_VERSION,
        "repro_version": repro_version(),
        "commit": commit,
        "ts": timestamp,
        "sections": sections,
    }
    with open(path, "a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return path


def load_history(path: "str | Path") -> list[dict]:
    """Parse a history JSONL file into a list of entries.

    Mirrors :func:`~repro.obs.trace.load_trace`'s error contract: a
    malformed line raises ``ValueError`` naming the line number; a
    missing file is an empty history, not an error.
    """
    path = Path(path)
    if not path.exists():
        return []
    entries: list[dict] = []
    with open(path) as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from None
            if (
                not isinstance(payload, dict)
                or "history_schema" not in payload
                or not isinstance(payload.get("sections"), dict)
            ):
                raise ValueError(
                    f"{path}:{lineno}: not a bench-history entry "
                    f"(need 'history_schema' and 'sections')"
                )
            entries.append(payload)
    return entries


def extract_metrics(bench: dict) -> dict[str, float | None]:
    """The tracked metric values found in one sections dict."""
    return {m.name: m.extract(bench) for m in METRICS}


# ----------------------------------------------------------------------
# The sentinel
# ----------------------------------------------------------------------
def _last_distinct(
    history: list[dict], metric: BenchMetric, current: float
) -> tuple[float | None, float | None]:
    """``(last, best)`` recorded values for one metric.

    ``last`` is the most recent recorded value that differs from
    ``current`` — a bench run appends itself to the history before the
    check runs, so the newest identical entry is the run under test,
    not its predecessor.  ``best`` is the maximum ever recorded.
    """
    values = [
        v for entry in history
        if (v := metric.extract(entry.get("sections", {}))) is not None
    ]
    best = max(values, default=None)
    last = None
    for v in reversed(values):
        if v != current:
            last = v
            break
    if last is None and values:
        last = values[-1]
    return last, best


def check_bench(
    bench: dict,
    history: list[dict],
    tolerance: float = DEFAULT_TOLERANCE,
) -> dict:
    """Gate the current bench sections against floors and history.

    Per metric:

    * ``floor_ok`` — ``value >= floor`` for ratio-basis metrics;
      baseline-basis metrics trip only when the history's best had met
      the floor (a genuine trajectory regression, not a slower host).
    * ``band_ok`` — ``value >= last * (1 - tolerance)`` against the
      last distinct recorded run (vacuously true with no history).
    * a metric missing from the current bench report fails outright —
      a deleted section must not silently retire its floor.

    Returns ``{"ok": bool, "tolerance": ..., "metrics": [...],
    "regressions": [names]}``.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    rows = []
    regressions = []
    for metric in METRICS:
        value = metric.extract(bench)
        if value is None:
            rows.append({
                "metric": metric.name,
                "value": None,
                "floor": metric.floor,
                "basis": metric.basis,
                "floor_ok": False,
                "last": None,
                "best": None,
                "band_ok": False,
                "ok": False,
                "note": "section missing from bench report",
            })
            regressions.append(metric.name)
            continue
        last, best = _last_distinct(history, metric, value)
        meets_floor = value >= metric.floor
        if metric.basis == "ratio":
            floor_ok = meets_floor
            note = "" if floor_ok else "below floor"
        else:
            # Baseline basis: only a *fall* below a floor the history
            # had met is attributable to the code rather than the host.
            history_met = best is not None and best >= metric.floor
            floor_ok = meets_floor or not history_met
            note = (
                "" if meets_floor
                else "regressed below previously-met floor"
                if not floor_ok
                else "below floor (host slower than recorded "
                     "baseline; band is the binding gate)"
            )
        band_ok = last is None or value >= last * (1.0 - tolerance)
        if not band_ok:
            note = (note + "; " if note else "") + (
                f"fell >{tolerance:.0%} below last recorded run"
            )
        ok = floor_ok and band_ok
        if not ok:
            regressions.append(metric.name)
        rows.append({
            "metric": metric.name,
            "value": value,
            "floor": metric.floor,
            "basis": metric.basis,
            "floor_ok": floor_ok,
            "last": last,
            "best": best,
            "band_ok": band_ok,
            "ok": ok,
            "note": note,
        })
    return {
        "ok": not regressions,
        "tolerance": tolerance,
        "entries": len(history),
        "metrics": rows,
        "regressions": regressions,
    }


def render_check(result: dict) -> str:
    """Render a :func:`check_bench` result as one ASCII table."""

    def num(v):
        return "-" if v is None else f"{v:.3f}"

    rows = [
        [
            r["metric"],
            num(r["value"]),
            f"{r['floor']:.1f}x ({r['basis']})",
            "ok" if r["floor_ok"] else "FAIL",
            num(r["last"]),
            "ok" if r["band_ok"] else "FAIL",
            r["note"] or "-",
        ]
        for r in result["metrics"]
    ]
    verdict = (
        "OK: speedup trajectory holds"
        if result["ok"]
        else f"REGRESSION: {', '.join(result['regressions'])}"
    )
    return format_table(
        ["metric", "current", "floor", "floor", "last", "band", "note"],
        rows,
        title=(
            f"Bench sentinel vs {result['entries']} recorded run(s), "
            f"tolerance {result['tolerance']:.0%}"
        ),
    ) + f"\n{verdict}"


def render_history(history: list[dict], last: int | None = None) -> str:
    """Render the recorded trajectory, newest last."""
    if not history:
        return "bench history: no recorded runs"
    shown = history if last is None else history[-last:]
    rows = []
    for entry in shown:
        metrics = extract_metrics(entry.get("sections", {}))
        rows.append([
            (entry.get("commit") or "-"),
            entry.get("repro_version", "-"),
            *[
                "-" if metrics[m.name] is None
                else f"{metrics[m.name]:.3f}"
                for m in METRICS
            ],
        ])
    return format_table(
        ["commit", "version", *[m.name for m in METRICS]],
        rows,
        title=(
            f"Bench history: {len(shown)} of {len(history)} "
            f"recorded run(s) (floors: "
            + ", ".join(f"{m.name} {m.floor:g}x" for m in METRICS)
            + ")"
        ),
    )
