"""The process-global observability session and its cheap front doors.

Instrumentation points throughout the library call the module-level
helpers — :func:`trace_span`, :func:`event`, :func:`inc`,
:func:`observe`, :func:`set_gauge` — which are **no-ops costing one
attribute check** unless an :class:`ObsSession` is active.  Golden
fixtures and ``cmp``-based CI checks pin that enabling a session never
changes any canonical output.

A session is installed with :func:`observability`::

    with observability(trace="out.jsonl") as session:
        run_scenario_sweep(...)
    # out.jsonl written at exit; session.metrics holds the aggregates

**Pool workers.**  Worker processes start without a session.  The
parallel engine asks the parent for a :func:`capture_config`, ships it
inside each chunk payload, and wraps every task in :func:`capture` — a
fresh buffering session whose spans and metrics are exported with the
task result.  Back in the parent, :func:`absorb` folds those buffers
into the active session *in task-index order*, which makes metric
aggregates identical for any ``jobs`` value (a serial run records the
same per-task events directly, in the same order).
"""

from __future__ import annotations

from contextlib import contextmanager
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = [
    "ObsSession",
    "observability",
    "active",
    "active_metrics",
    "active_tracer",
    "trace_span",
    "event",
    "inc",
    "observe",
    "set_gauge",
    "capture_config",
    "capture",
    "absorb",
]


class ObsSession:
    """One observability scope: an optional tracer plus a registry.

    ``trace`` may be a path (the JSONL sink, written at :meth:`finish`)
    or ``True`` (trace in memory only); ``metrics=False`` drops the
    registry for trace-only sessions.
    """

    def __init__(
        self,
        trace: "str | Path | bool | None" = None,
        metrics: bool = True,
    ) -> None:
        self.trace_path = (
            Path(trace) if isinstance(trace, (str, Path)) else None
        )
        self.tracer = Tracer() if trace else None
        self.metrics = MetricsRegistry() if metrics else None

    def finish(self) -> None:
        """Flush the trace sink (called automatically at session exit)."""
        if self.tracer is not None and self.trace_path is not None:
            self.tracer.write_jsonl(self.trace_path)


#: The active session (installed by :func:`observability` /
#: :func:`capture`); module-level so the fast path is one global read.
_ACTIVE: ObsSession | None = None


def active() -> ObsSession | None:
    """The active session, if any."""
    return _ACTIVE


def active_metrics() -> MetricsRegistry | None:
    s = _ACTIVE
    return s.metrics if s is not None else None


def active_tracer() -> Tracer | None:
    s = _ACTIVE
    return s.tracer if s is not None else None


@contextmanager
def observability(
    trace: "str | Path | bool | None" = None, metrics: bool = True
):
    """Install an :class:`ObsSession` for the duration of the block.

    Sessions nest (the previous one is restored on exit); the trace
    sink, when a path was given, is written on exit even if the block
    raised — a failed sweep's trace is exactly when you want the file.
    """
    global _ACTIVE
    session = ObsSession(trace=trace, metrics=metrics)
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield session
    finally:
        _ACTIVE = previous
        session.finish()


# ----------------------------------------------------------------------
# Cheap instrumentation front doors
# ----------------------------------------------------------------------
class _NullSpan:
    """Shared no-op context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


def trace_span(kind: str, /, **attrs):
    """A context manager recording one span (no-op when disabled)."""
    s = _ACTIVE
    if s is None or s.tracer is None:
        return _NULL_SPAN
    return s.tracer.span(kind, attrs)


def event(kind: str, /, **attrs) -> None:
    """Record an instantaneous event span (no-op when disabled)."""
    s = _ACTIVE
    if s is not None and s.tracer is not None:
        s.tracer.event(kind, attrs)


def inc(name: str, n: "int | float" = 1) -> None:
    """Increment counter ``name`` (no-op when disabled)."""
    s = _ACTIVE
    if s is not None and s.metrics is not None:
        s.metrics.inc(name, n)


def observe(name: str, value: float, buckets: tuple | None = None) -> None:
    """Record ``value`` into histogram ``name`` (no-op when disabled)."""
    s = _ACTIVE
    if s is not None and s.metrics is not None:
        s.metrics.observe(name, value, buckets=buckets)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when disabled)."""
    s = _ACTIVE
    if s is not None and s.metrics is not None:
        s.metrics.set_gauge(name, value)


# ----------------------------------------------------------------------
# Worker capture (the parallel engine's telemetry shipping)
# ----------------------------------------------------------------------
def capture_config() -> dict | None:
    """A picklable description of what the active session records —
    ``None`` when observability is off, so task payloads are unchanged
    and workers skip the capture machinery entirely."""
    s = _ACTIVE
    if s is None:
        return None
    return {
        "trace": s.tracer is not None,
        "metrics": s.metrics is not None,
    }


class _Capture:
    """Handle yielded by :func:`capture`; :meth:`export` after the block
    returns the picklable telemetry blob to ship to the parent."""

    def __init__(self, session: ObsSession) -> None:
        self._session = session

    def export(self) -> dict:
        return {
            "spans": (
                self._session.tracer.export()
                if self._session.tracer is not None else []
            ),
            "metrics": (
                self._session.metrics.to_payload()
                if self._session.metrics is not None else None
            ),
        }


@contextmanager
def capture(config: dict):
    """Run a block under a fresh buffering session (pool-worker side).

    The temporary session replaces any active one for the duration of
    the block, so the block's instrumentation lands in the buffer — in
    the parent process this is exactly how the serial path and the pool
    path stay equivalent: the same events are recorded either way, only
    the route back to the session differs.
    """
    global _ACTIVE
    session = ObsSession(
        trace=bool(config.get("trace")),
        metrics=bool(config.get("metrics")),
    )
    previous = _ACTIVE
    _ACTIVE = session
    try:
        yield _Capture(session)
    finally:
        _ACTIVE = previous


def absorb(blob: dict | None) -> None:
    """Fold a worker's exported telemetry blob into the active session.

    Callers are responsible for absorbing blobs in task-index order —
    that ordering is what makes the merged aggregates independent of
    worker scheduling.
    """
    if blob is None:
        return
    s = _ACTIVE
    if s is None:
        return
    if s.tracer is not None and blob.get("spans"):
        s.tracer.absorb(blob["spans"])
    if s.metrics is not None and blob.get("metrics") is not None:
        s.metrics.merge_payload(blob["metrics"])
