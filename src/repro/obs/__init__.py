"""Zero-dependency observability: span tracing, metrics, profiling.

The ROADMAP's service and store-eviction work both need measurement —
where a sweep spends its time, which pipeline stage dominates, whether
the store is actually hitting.  This package provides it in three
strictly **out-of-band** layers (canonical reports, fingerprints and
golden fixtures are byte-identical whether observability is on or off,
for any ``jobs``/shard/resume combination — CI ``cmp``-enforces it):

* **Span tracing** (:mod:`repro.obs.trace`): hierarchical
  ``trace_span("sweep.cell", **attrs)`` context managers with
  monotonic-clock durations, parent/child ids and a JSONL sink,
  instrumented through solver runs, pipeline/portfolio stages,
  refinement, sweep cells, store ``get``/``put`` and service requests.
  ``repro trace summarize out.jsonl`` aggregates a recording into a
  per-kind count/total/p50/p99 table.
* **Metrics** (:mod:`repro.obs.metrics`): counters, gauges and
  fixed-bucket histograms (``store.hits``, ``solver.duration_s``,
  ``sweep.cells_failed``, ...) that aggregate deterministically and
  jobs-invariantly — pool workers buffer events locally and the parent
  merges them in task-index order.
* **Profiling** (:mod:`repro.obs.profile`): opt-in per-worker
  ``cProfile`` dumps via ``REPRO_PROFILE``/``--profile DIR``;
  ``repro profile merge DIR`` aggregates the per-process dumps.

On top of the recorders sit pure post-processing layers: **analytics**
(:mod:`repro.obs.analyze` — self-time hotspots, critical path, trace
diff with a budget gate), **export** (:mod:`repro.obs.export` — Chrome
trace-event JSON and collapsed flamegraph stacks), the **bench
sentinel** (:mod:`repro.obs.history` — schema-versioned
``BENCH_history.jsonl`` log and the ``repro bench check`` regression
gate), and **live progress** (:mod:`repro.obs.progress` — the
``repro sweep --progress`` stderr heartbeat with stall detection).

Everything is a no-op (one attribute check) until a session is
installed — via :func:`observability`, the CLI's ``--trace``/
``--metrics`` flags, or the ``REPRO_TRACE`` environment variable.
"""

from repro.obs.analyze import (
    critical_path,
    diff_regressions,
    diff_traces,
    hotspots,
    self_times,
    span_tree,
)
from repro.obs.export import (
    export_trace,
    pstats_to_collapsed,
    to_chrome_trace,
    to_collapsed_stacks,
    write_chrome_trace,
)
from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    BenchMetric,
    METRICS,
    append_history,
    check_bench,
    load_history,
)
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.profile import (
    PROFILE_ENV,
    maybe_profile,
    merge_profiles,
    profile_dir,
    render_merged_profile,
)
from repro.obs.progress import SweepProgress, as_progress
from repro.obs.session import (
    ObsSession,
    absorb,
    active,
    active_metrics,
    active_tracer,
    capture,
    capture_config,
    event,
    inc,
    observe,
    observability,
    set_gauge,
    trace_span,
)
from repro.obs.summarize import (
    percentile,
    render_metrics,
    render_trace_summary,
    summarize_spans,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    load_trace,
    span_from_payload,
    span_to_payload,
)

__all__ = [
    # trace
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "load_trace",
    "span_to_payload",
    "span_from_payload",
    # metrics
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    # session
    "ObsSession",
    "observability",
    "active",
    "active_metrics",
    "active_tracer",
    "trace_span",
    "event",
    "inc",
    "observe",
    "set_gauge",
    "capture_config",
    "capture",
    "absorb",
    # profiling
    "PROFILE_ENV",
    "maybe_profile",
    "profile_dir",
    "merge_profiles",
    "render_merged_profile",
    # summaries
    "percentile",
    "summarize_spans",
    "render_trace_summary",
    "render_metrics",
    # analytics
    "span_tree",
    "self_times",
    "hotspots",
    "critical_path",
    "diff_traces",
    "diff_regressions",
    # export
    "to_chrome_trace",
    "write_chrome_trace",
    "to_collapsed_stacks",
    "pstats_to_collapsed",
    "export_trace",
    # bench history / sentinel
    "HISTORY_SCHEMA_VERSION",
    "BenchMetric",
    "METRICS",
    "append_history",
    "load_history",
    "check_bench",
    # live progress
    "SweepProgress",
    "as_progress",
]
