"""Zero-dependency observability: span tracing, metrics, profiling.

The ROADMAP's service and store-eviction work both need measurement —
where a sweep spends its time, which pipeline stage dominates, whether
the store is actually hitting.  This package provides it in three
strictly **out-of-band** layers (canonical reports, fingerprints and
golden fixtures are byte-identical whether observability is on or off,
for any ``jobs``/shard/resume combination — CI ``cmp``-enforces it):

* **Span tracing** (:mod:`repro.obs.trace`): hierarchical
  ``trace_span("sweep.cell", **attrs)`` context managers with
  monotonic-clock durations, parent/child ids and a JSONL sink,
  instrumented through solver runs, pipeline/portfolio stages,
  refinement, sweep cells, store ``get``/``put`` and service requests.
  ``repro trace summarize out.jsonl`` aggregates a recording into a
  per-kind count/total/p50/p99 table.
* **Metrics** (:mod:`repro.obs.metrics`): counters, gauges and
  fixed-bucket histograms (``store.hits``, ``solver.duration_s``,
  ``sweep.cells_failed``, ...) that aggregate deterministically and
  jobs-invariantly — pool workers buffer events locally and the parent
  merges them in task-index order.
* **Profiling** (:mod:`repro.obs.profile`): opt-in per-worker
  ``cProfile`` dumps via ``REPRO_PROFILE``/``--profile DIR``.

Everything is a no-op (one attribute check) until a session is
installed — via :func:`observability`, the CLI's ``--trace``/
``--metrics`` flags, or the ``REPRO_TRACE`` environment variable.
"""

from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.profile import PROFILE_ENV, maybe_profile, profile_dir
from repro.obs.session import (
    ObsSession,
    absorb,
    active,
    active_metrics,
    active_tracer,
    capture,
    capture_config,
    event,
    inc,
    observe,
    observability,
    set_gauge,
    trace_span,
)
from repro.obs.summarize import (
    render_metrics,
    render_trace_summary,
    summarize_spans,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    Tracer,
    load_trace,
    span_from_payload,
    span_to_payload,
)

__all__ = [
    # trace
    "TRACE_SCHEMA_VERSION",
    "Span",
    "Tracer",
    "load_trace",
    "span_to_payload",
    "span_from_payload",
    # metrics
    "DEFAULT_BUCKETS",
    "Histogram",
    "MetricsRegistry",
    # session
    "ObsSession",
    "observability",
    "active",
    "active_metrics",
    "active_tracer",
    "trace_span",
    "event",
    "inc",
    "observe",
    "set_gauge",
    "capture_config",
    "capture",
    "absorb",
    # profiling
    "PROFILE_ENV",
    "maybe_profile",
    "profile_dir",
    # summaries
    "summarize_spans",
    "render_trace_summary",
    "render_metrics",
]
