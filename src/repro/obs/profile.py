"""Opt-in ``cProfile`` hooks for the CLI and pool workers.

Setting the ``REPRO_PROFILE`` environment variable to a directory (or
passing ``--profile DIR`` on the CLI, which sets it) arms
:func:`maybe_profile`: the wrapped block runs under ``cProfile`` and
dumps a ``<tag>-<pid>-<seq>.pstats`` file into the directory.  The
environment variable is inherited by pool workers, so a profiled sweep
leaves one dump per executed chunk alongside the parent's — load them
with ``pstats.Stats`` (``python -m pstats DIR/worker-*.pstats``) or
merge with ``Stats.add``.

Profiling is strictly additive: it never touches task payloads,
results or reports, and when the variable is unset the wrapper costs
one environment lookup.
"""

from __future__ import annotations

import io
import os
from contextlib import contextmanager
from pathlib import Path

__all__ = [
    "PROFILE_ENV",
    "maybe_profile",
    "profile_dir",
    "find_profile_dumps",
    "merge_profiles",
    "render_merged_profile",
]

#: Environment variable naming the profile-dump directory.
PROFILE_ENV = "REPRO_PROFILE"

#: Per-process dump sequence (several chunks run in one worker).
_SEQ = 0


def profile_dir() -> Path | None:
    """The armed profile directory, if any."""
    value = os.environ.get(PROFILE_ENV)
    return Path(value) if value else None


@contextmanager
def maybe_profile(tag: str):
    """Profile the block into ``$REPRO_PROFILE/<tag>-<pid>-<seq>.pstats``
    when armed; a transparent no-op otherwise."""
    target = profile_dir()
    if target is None:
        yield None
        return
    import cProfile

    global _SEQ
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        _SEQ += 1
        target.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(
            target / f"{tag}-{os.getpid()}-{_SEQ}.pstats"
        )


# ----------------------------------------------------------------------
# Merging dumps (``repro profile merge DIR``)
# ----------------------------------------------------------------------
def find_profile_dumps(directory: "str | Path") -> list[Path]:
    """The ``*.pstats`` dumps under ``directory``, sorted by name.

    Name order groups a profiled run's dumps deterministically
    (``<tag>-<pid>-<seq>``); merging is order-insensitive anyway.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise FileNotFoundError(
            f"{directory}: not a directory (expected the --profile/"
            f"{PROFILE_ENV} dump directory)"
        )
    return sorted(directory.glob("*.pstats"))


def merge_profiles(source: "str | Path | list[Path]"):
    """Aggregate per-process profile dumps into one ``pstats.Stats``.

    ``source`` is the dump directory (or an explicit file list).  A
    profiled pool sweep scatters one dump per executed chunk across
    parent and worker pids; ``Stats.add`` sums their per-function
    timings, so the merged view answers "where did the whole run spend
    its time" regardless of which process did the spending.
    """
    import pstats

    files = (
        source if isinstance(source, list) else find_profile_dumps(source)
    )
    if not files:
        raise FileNotFoundError(
            f"no *.pstats dumps in {source} (run with --profile DIR or "
            f"{PROFILE_ENV}=DIR first)"
        )
    stats = pstats.Stats(str(files[0]))
    for path in files[1:]:
        stats.add(str(path))
    return stats


def render_merged_profile(
    source: "str | Path | list[Path]", top: int = 25
) -> str:
    """Text report for ``repro profile merge``: the merged cumulative
    table (top ``top`` functions) plus a one-line provenance header."""
    files = (
        source if isinstance(source, list) else find_profile_dumps(source)
    )
    stats = merge_profiles(files)
    buf = io.StringIO()
    stats.stream = buf
    stats.sort_stats("cumulative").print_stats(top)
    body = buf.getvalue()
    header = (
        f"Merged profile: {len(files)} dump(s) "
        f"({', '.join(p.name for p in files[:6])}"
        f"{', ...' if len(files) > 6 else ''})"
    )
    return header + "\n" + body.rstrip()
