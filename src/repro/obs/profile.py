"""Opt-in ``cProfile`` hooks for the CLI and pool workers.

Setting the ``REPRO_PROFILE`` environment variable to a directory (or
passing ``--profile DIR`` on the CLI, which sets it) arms
:func:`maybe_profile`: the wrapped block runs under ``cProfile`` and
dumps a ``<tag>-<pid>-<seq>.pstats`` file into the directory.  The
environment variable is inherited by pool workers, so a profiled sweep
leaves one dump per executed chunk alongside the parent's — load them
with ``pstats.Stats`` (``python -m pstats DIR/worker-*.pstats``) or
merge with ``Stats.add``.

Profiling is strictly additive: it never touches task payloads,
results or reports, and when the variable is unset the wrapper costs
one environment lookup.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path

__all__ = ["PROFILE_ENV", "maybe_profile", "profile_dir"]

#: Environment variable naming the profile-dump directory.
PROFILE_ENV = "REPRO_PROFILE"

#: Per-process dump sequence (several chunks run in one worker).
_SEQ = 0


def profile_dir() -> Path | None:
    """The armed profile directory, if any."""
    value = os.environ.get(PROFILE_ENV)
    return Path(value) if value else None


@contextmanager
def maybe_profile(tag: str):
    """Profile the block into ``$REPRO_PROFILE/<tag>-<pid>-<seq>.pstats``
    when armed; a transparent no-op otherwise."""
    target = profile_dir()
    if target is None:
        yield None
        return
    import cProfile

    global _SEQ
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        _SEQ += 1
        target.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(
            target / f"{tag}-{os.getpid()}-{_SEQ}.pstats"
        )
