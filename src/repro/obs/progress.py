"""Live sweep progress: an out-of-band stderr heartbeat.

A long ``repro sweep`` is silent until the consolidated report prints;
:class:`SweepProgress` gives the operator a pulse without touching the
report.  The channel is **strictly out of band**: it writes to its own
stream (stderr by default), reads counters that already exist
(:class:`~repro.resilience.ExecutionStats`), and a sweep run with
progress on emits a byte-identical consolidated report (CI
``cmp``-enforces it).

The heartbeat line::

    [sweep 12/40  30.0%] eta 42s | 1.31 cells/s | hits 5 (41.7%) | \
retries 1 crashes 0 timeouts 0

* **ETA** is a rolling mean over the last few inter-completion
  intervals times the remaining cell count — robust to the early cells
  warming caches slower than the steady state.
* **hits** counts store-resumed cells (the live hit-rate of a resumed
  sweep); retries/crashes/timeouts mirror the engine's live
  :class:`~repro.resilience.ExecutionStats`.
* **Stall detection**: a background monitor thread emits a
  ``progress.stall`` warning (and an obs event, when a session is
  active) when no cell has completed within ``stall_factor`` x the p99
  inter-completion interval — the operator's cue that a worker is hung
  or a cell is pathological, long before any deadline fires.

Heartbeats are rate-limited to one per ``interval_s``; the monitor
thread only reads counters and writes the stream, so it cannot perturb
task execution or determinism.
"""

from __future__ import annotations

import sys
import threading
import time

from repro.obs.session import event, inc
from repro.obs.summarize import percentile

__all__ = ["SweepProgress", "as_progress"]


class SweepProgress:
    """Progress tracker for one sweep (use via ``run_scenario_sweep
    (progress=...)`` or ``repro sweep --progress``).

    ``stream`` defaults to ``sys.stderr`` (resolved lazily so pytest's
    capture sees it); ``use_thread=False`` disables the background
    monitor — completions still emit heartbeats, and tests drive stall
    detection deterministically through :meth:`check_stall` with an
    injected ``clock``.
    """

    #: Rolling window (completions) for the ETA estimate.
    ETA_WINDOW = 20

    def __init__(
        self,
        stream=None,
        interval_s: float = 2.0,
        stall_factor: float = 4.0,
        min_samples: int = 5,
        stats=None,
        use_thread: bool = True,
        clock=time.monotonic,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if stall_factor <= 0:
            raise ValueError("stall_factor must be positive")
        self._stream = stream
        self.interval_s = interval_s
        self.stall_factor = stall_factor
        self.min_samples = min_samples
        self.stats = stats
        self.use_thread = use_thread
        self._clock = clock
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.total = 0
        self.done = 0
        self.resumed = 0
        self.failed = 0
        self.stalls = 0
        self._intervals: list[float] = []
        self._t0 = 0.0
        self._last_done_at = 0.0
        self._last_emit_at = 0.0
        self._stall_flagged = False
        self._started = False

    # -- lifecycle ------------------------------------------------------
    def start(self, total: int) -> "SweepProgress":
        self.total = int(total)
        self._t0 = self._last_done_at = self._clock()
        self._started = True
        self._emit(f"[sweep 0/{self.total}] started")
        if self.use_thread and self.total > 0:
            self._thread = threading.Thread(
                target=self._monitor, name="sweep-progress", daemon=True
            )
            self._thread.start()
        return self

    def finish(self) -> None:
        if not self._started:
            return
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        elapsed = self._clock() - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        self._emit(
            f"[sweep {self.done}/{self.total}] finished in "
            f"{elapsed:.1f}s ({rate:.2f} cells/s, "
            f"{self.resumed} store hits, {self.failed} failed, "
            f"{self.stalls} stall warnings)"
        )
        self._started = False

    def __enter__(self) -> "SweepProgress":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.finish()
        return False

    # -- recording ------------------------------------------------------
    def cell_done(self, resumed: bool = False, failed: bool = False) -> None:
        """Record one finished cell (store hit, computed, or failed)."""
        now = self._clock()
        with self._lock:
            self.done += 1
            if resumed:
                self.resumed += 1
            if failed:
                self.failed += 1
            self._intervals.append(now - self._last_done_at)
            self._last_done_at = now
            self._stall_flagged = False
            force = self.done >= self.total
        self.heartbeat(now=now, force=force)

    # -- reporting ------------------------------------------------------
    def _eta_s(self) -> float | None:
        if not self._intervals or self.done == 0:
            return None
        window = self._intervals[-self.ETA_WINDOW:]
        mean = sum(window) / len(window)
        return mean * (self.total - self.done)

    def render_line(self) -> str:
        """The current heartbeat line (no side effects)."""
        with self._lock:
            done, total = self.done, self.total
            resumed, failed = self.resumed, self.failed
            eta = self._eta_s()
        pct = 100.0 * done / total if total else 100.0
        elapsed = self._clock() - self._t0
        rate = done / elapsed if elapsed > 0 else 0.0
        parts = [f"[sweep {done}/{total} {pct:5.1f}%]"]
        parts.append(
            "eta -" if eta is None or done >= total
            else f"eta {eta:.0f}s"
        )
        parts.append(f"{rate:.2f} cells/s")
        if resumed or failed:
            hit_rate = 100.0 * resumed / done if done else 0.0
            parts.append(f"hits {resumed} ({hit_rate:.1f}%)")
        if failed:
            parts.append(f"failed {failed}")
        s = self.stats
        if s is not None and (s.retries or s.crashes or s.timeouts):
            parts.append(
                f"retries {s.retries} crashes {s.crashes} "
                f"timeouts {s.timeouts}"
            )
        return " | ".join(parts)

    def heartbeat(self, now: float | None = None, force: bool = False) -> bool:
        """Emit a heartbeat line if the rate limit allows; returns
        whether a line was written."""
        now = self._clock() if now is None else now
        if not force and now - self._last_emit_at < self.interval_s:
            return False
        self._last_emit_at = now
        self._emit(self.render_line())
        return True

    def check_stall(self, now: float | None = None) -> bool:
        """Emit a stall warning when no cell completed within
        ``stall_factor`` x p99 of the inter-completion intervals.

        One warning per silent stretch: the flag rearms on the next
        completion.  Needs ``min_samples`` completed cells first (the
        p99 is meaningless earlier).
        """
        now = self._clock() if now is None else now
        with self._lock:
            if (
                self._stall_flagged
                or self.done >= self.total
                or len(self._intervals) < self.min_samples
            ):
                return False
            p99 = percentile(sorted(self._intervals), 0.99)
            threshold = self.stall_factor * max(p99, 1e-9)
            gap = now - self._last_done_at
            if gap <= threshold:
                return False
            self._stall_flagged = True
            self.stalls += 1
        self._emit(
            f"[sweep {self.done}/{self.total}] STALL: no cell completed "
            f"for {gap:.1f}s (> {self.stall_factor:g} x p99 "
            f"{p99:.2f}s) — a worker may be hung"
        )
        event("progress.stall", gap_s=gap, threshold_s=threshold,
              done=self.done, total=self.total)
        inc("progress.stalls")
        return True

    # -- internals ------------------------------------------------------
    def _emit(self, line: str) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        try:
            print(line, file=stream, flush=True)
        except (OSError, ValueError):  # pragma: no cover - closed stream
            pass

    def _monitor(self) -> None:  # pragma: no cover - timing-dependent
        tick = min(0.5, self.interval_s / 2)
        while not self._stop.wait(tick):
            now = self._clock()
            self.check_stall(now=now)
            if now - self._last_emit_at >= self.interval_s:
                self.heartbeat(now=now)


def as_progress(progress, stats=None) -> SweepProgress | None:
    """Normalise ``run_scenario_sweep``'s ``progress`` argument.

    ``None``/``False`` disable the channel, ``True`` builds the default
    stderr reporter, and a :class:`SweepProgress` passes through (its
    ``stats`` is filled in if the caller had not bound one).
    """
    if progress is None or progress is False:
        return None
    if progress is True:
        return SweepProgress(stats=stats)
    if isinstance(progress, SweepProgress):
        if progress.stats is None:
            progress.stats = stats
        return progress
    raise TypeError(
        f"progress must be None, bool or SweepProgress, got "
        f"{type(progress).__name__}"
    )
