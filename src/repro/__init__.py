"""repro: energy-aware mapping of series-parallel workflows onto CMPs.

Reproduction of Benoit, Melhem, Renaud-Goud and Robert, *Energy-aware
mappings of series-parallel workflows onto chip multiprocessors*
(ICPP 2011 / INRIA RR-7521).

Quickstart::

    from repro import (
        streamit_workflow, CMPGrid, ProblemInstance, run, choose_period,
    )

    app = streamit_workflow("FMRadio")
    grid = CMPGrid(4, 4)
    choice = choose_period(app, grid)          # Section 6.1.3 procedure
    result = run("Greedy", ProblemInstance(app, grid, choice.period))
    print(result.energy.total, "J per period")

Any solver spec from the unified registry works in place of "Greedy" —
``run("dpa2d1d+refine", ...)``, ``run("portfolio", ...)`` — or use
:func:`repro.solve` directly for the full
:class:`~repro.solvers.SolverResult` (stats, timings, portfolio
members).  ``repro solvers list`` on the CLI shows the registry.
"""

from repro.core import (
    BudgetExceeded,
    EnergyBreakdown,
    HeuristicFailure,
    IdealLattice,
    Mapping,
    MappingError,
    ProblemInstance,
    ReproError,
    UnsupportedPlatform,
    cycle_times,
    energy,
    get_kernel,
    is_period_feasible,
    kernel_names,
    max_cycle_time,
    set_default_kernel,
    use_kernel,
    validate,
)
from repro.experiments import (
    CCR_SETTINGS,
    DEFAULT_ELEVATIONS,
    choose_period,
    run_all,
    run_random_experiment,
    run_streamit_experiment,
)
from repro.heuristics import (
    PAPER_ORDER,
    REGISTRY,
    HeuristicResult,
    dpa1d_mapping,
    dpa2d1d_mapping,
    dpa2d_mapping,
    greedy_mapping,
    random_mapping,
    run,
)
from repro.platform import XSCALE, CMPGrid, PowerModel, xscale_model
from repro.solvers import (
    SolverResult,
    get_solver,
    parse_solver_spec,
    solve,
    solver_names,
)
from repro.store import (
    open_store,
    serve_batch,
)
from repro.spg import (
    SPG,
    STREAMIT_TABLE1,
    chain,
    diamond,
    fork_join,
    parallel,
    pipeline_of,
    random_spg,
    random_spg_with_elevation,
    series,
    sp_edge,
    split_join,
    streamit_suite,
    streamit_workflow,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "Mapping",
    "ProblemInstance",
    "EnergyBreakdown",
    "IdealLattice",
    "ReproError",
    "MappingError",
    "HeuristicFailure",
    "BudgetExceeded",
    "UnsupportedPlatform",
    "cycle_times",
    "max_cycle_time",
    "is_period_feasible",
    "energy",
    "validate",
    "get_kernel",
    "kernel_names",
    "set_default_kernel",
    "use_kernel",
    # spg
    "SPG",
    "series",
    "parallel",
    "sp_edge",
    "chain",
    "split_join",
    "fork_join",
    "diamond",
    "pipeline_of",
    "random_spg",
    "random_spg_with_elevation",
    "streamit_workflow",
    "streamit_suite",
    "STREAMIT_TABLE1",
    # platform
    "CMPGrid",
    "PowerModel",
    "XSCALE",
    "xscale_model",
    # heuristics
    "run",
    "REGISTRY",
    "PAPER_ORDER",
    "HeuristicResult",
    "random_mapping",
    "greedy_mapping",
    "dpa1d_mapping",
    "dpa2d_mapping",
    "dpa2d1d_mapping",
    # solvers
    "SolverResult",
    "solve",
    "get_solver",
    "parse_solver_spec",
    "solver_names",
    # experiments
    "choose_period",
    "run_all",
    "run_streamit_experiment",
    "run_random_experiment",
    "CCR_SETTINGS",
    "DEFAULT_ELEVATIONS",
    # store
    "open_store",
    "serve_batch",
]
