"""Routing policies on grid-addressed platforms.

Two routing schemes appear in the paper's heuristics:

* **XY routing** (Section 5.1): traverse horizontal links first, then
  vertical links.  Deterministic, deadlock-free, used by Random and as the
  default path generator for arbitrary mappings.
* **Snake embedding** (Section 5.4): the ``p x q`` grid is configured as a
  1 x pq uni-directional line following a boustrophedon ("snake") order;
  the 1D heuristics map clusters along it and use only snake links.

The torus variant (:func:`torus_path`) extends XY routing with wraparound
hops, always taking the shorter way around each dimension (ties resolved
towards increasing coordinates, matching :func:`xy_path`).
"""

from __future__ import annotations

from functools import lru_cache

from repro.platform.cmp import CMPGrid, Core

__all__ = ["xy_path", "snake_order", "snake_path", "manhattan", "torus_path"]


def manhattan(a: Core, b: Core) -> int:
    """Manhattan distance between two cores."""
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


@lru_cache(maxsize=4096)
def _xy_path_cached(src: Core, dst: Core) -> tuple[Core, ...]:
    (u1, v1), (u2, v2) = src, dst
    path = [(u1, v1)]
    step = 1 if v2 > v1 else -1
    for v in range(v1 + step, v2 + step, step) if v1 != v2 else []:
        path.append((u1, v))
    step = 1 if u2 > u1 else -1
    for u in range(u1 + step, u2 + step, step) if u1 != u2 else []:
        path.append((u, v2))
    return tuple(path)


def xy_path(src: Core, dst: Core) -> list[Core]:
    """The XY route from ``src`` to ``dst`` (inclusive of both endpoints).

    Horizontal links first (fix the column), then vertical links (fix the
    row), as described for the Random heuristic: a communication from
    ``C(u,v)`` to ``C(u',v')`` follows horizontal links to ``C(u,v')`` and
    then vertical links to ``C(u',v')``.  ``xy_path(c, c)`` is the
    single-core path ``[c]`` — callers need no degenerate special case.

    Routes are memoised per ``(src, dst)`` pair (they are recomputed for
    every remote edge of every candidate mapping); a fresh list is returned
    on every call so that callers mutating their copy cannot corrupt the
    cache.
    """
    if src == dst:
        return [src]
    return list(_xy_path_cached(src, dst))


@lru_cache(maxsize=256)
def _snake_order_cached(p: int, q: int) -> tuple[Core, ...]:
    order: list[Core] = []
    for u in range(p):
        cols = range(q) if u % 2 == 0 else range(q - 1, -1, -1)
        order.extend((u, v) for v in cols)
    return tuple(order)


def snake_order(p: int, q: int) -> list[Core]:
    """The boustrophedon enumeration of a ``p x q`` grid.

    Row 0 left-to-right, row 1 right-to-left, and so on; consecutive cores
    in the returned list are always grid neighbours, so the order embeds a
    1 x pq uni-directional line into the grid:

    ``(0,0) -> (0,1) -> ... -> (0,q-1) -> (1,q-1) -> (1,q-2) -> ...``

    Memoised per grid shape; returns a fresh list per call (see
    :func:`xy_path`).
    """
    return list(_snake_order_cached(p, q))


def snake_path(grid: CMPGrid, i: int, j: int) -> list[Core]:
    """The path along the snake from position ``i`` to position ``j >= i``.

    Positions index :func:`snake_order`; the result is the exact list of
    physical cores traversed (all consecutive pairs are grid links).
    ``i == j`` yields the single-core path — degenerate ranges no longer
    need caller-side special-casing.
    """
    if not 0 <= i <= j < grid.n_cores:
        raise ValueError("need 0 <= i <= j < p*q")
    return snake_order(grid.p, grid.q)[i : j + 1]


@lru_cache(maxsize=8192)
def _torus_path_cached(
    p: int, q: int, src: Core, dst: Core
) -> tuple[Core, ...]:
    (u1, v1), (u2, v2) = src, dst
    path = [(u1, v1)]
    # Columns first, shorter way around (ties towards +1, as in xy_path).
    fwd = (v2 - v1) % q
    back = (v1 - v2) % q
    step = 1 if fwd <= back else -1
    v = v1
    while v != v2:
        v = (v + step) % q
        path.append((u1, v))
    # Then rows.
    fwd = (u2 - u1) % p
    back = (u1 - u2) % p
    step = 1 if fwd <= back else -1
    u = u1
    while u != u2:
        u = (u + step) % p
        path.append((u, v2))
    return tuple(path)


def torus_path(p: int, q: int, src: Core, dst: Core) -> list[Core]:
    """Dimension-ordered wraparound routing on a ``p x q`` torus.

    Like XY routing, but each dimension is traversed the shorter way
    around the ring (ties broken towards increasing coordinates).
    Memoised per ``(p, q, src, dst)``; returns a fresh list per call.
    """
    return list(_torus_path_cached(p, q, src, dst))
