"""CMP platform substrate: grid topology, DVFS power model, routing."""

from repro.platform.cmp import CMPGrid, Core, Link
from repro.platform.speeds import PowerModel, XSCALE, xscale_model
from repro.platform.routing import xy_path, snake_order, snake_path, manhattan

__all__ = [
    "CMPGrid",
    "Core",
    "Link",
    "PowerModel",
    "XSCALE",
    "xscale_model",
    "xy_path",
    "snake_order",
    "snake_path",
    "manhattan",
]
