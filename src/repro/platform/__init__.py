"""Pluggable CMP platform substrate: topologies, DVFS power model, routing.

Importing this package registers the built-in fabrics (mesh, uniline,
torus, ring, uniring, benes, hetmesh); ``get_topology(name, p, q)`` builds
one and ``topology_names()`` lists them.
"""

from repro.platform.cmp import CMPGrid, Core, Link
from repro.platform.speeds import PowerModel, XSCALE, xscale_model
from repro.platform.routing import (
    xy_path,
    snake_order,
    snake_path,
    manhattan,
    torus_path,
)
from repro.platform.topology import (
    Topology,
    TopologySpec,
    TOPOLOGIES,
    register_topology,
    get_topology,
    topology_names,
)
from repro.platform.fabrics import (
    TorusTopology,
    RingTopology,
    BenesTopology,
)

__all__ = [
    "CMPGrid",
    "Core",
    "Link",
    "PowerModel",
    "XSCALE",
    "xscale_model",
    "xy_path",
    "snake_order",
    "snake_path",
    "manhattan",
    "torus_path",
    "Topology",
    "TopologySpec",
    "TOPOLOGIES",
    "register_topology",
    "get_topology",
    "topology_names",
    "TorusTopology",
    "RingTopology",
    "BenesTopology",
]
