"""DVFS speed sets and the power/energy model of Section 3.5 / 6.1.2.

The default configuration is the Intel XScale model used by the paper's
simulations: five speeds (0.15 to 1 GHz), dynamic powers 80 to 1600 mW,
computation leakage 80 mW, 16-byte-wide links at 1.2 GHz (19.2 GB/s per
direction) and a link energy of 6 pJ/bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PowerModel", "XSCALE", "xscale_model"]

GHZ = 1e9


@dataclass(frozen=True)
class PowerModel:
    """Discrete DVFS speeds and the associated power/energy constants.

    Attributes
    ----------
    speeds:
        Possible core speeds in Hz, strictly increasing.
    dyn_power:
        ``dyn_power[k]`` is the dynamic power (W) drawn while computing at
        ``speeds[k]``.
    comp_leak:
        Leakage power (W) dissipated by each *active* core over the whole
        period.
    comm_leak:
        Aggregated leakage power (W) of all routers/links (paper uses 0: it
        adds the same ``P_leak * T`` to every mapping).
    e_bit:
        Energy (J) to transfer one bit across one link hop.
    bandwidth:
        Link bandwidth in bytes/s, per direction.
    """

    speeds: tuple[float, ...]
    dyn_power: tuple[float, ...]
    comp_leak: float
    comm_leak: float
    e_bit: float
    bandwidth: float
    _sorted: tuple[float, ...] = field(init=False, repr=False, default=())

    def __post_init__(self) -> None:
        if len(self.speeds) != len(self.dyn_power):
            raise ValueError("speeds and dyn_power must have the same length")
        if not self.speeds:
            raise ValueError("need at least one speed")
        if any(s2 <= s1 for s1, s2 in zip(self.speeds, self.speeds[1:])):
            raise ValueError("speeds must be strictly increasing")
        object.__setattr__(self, "_sorted", tuple(self.speeds))

    # ------------------------------------------------------------------
    @property
    def s_max(self) -> float:
        """Fastest available speed (Hz)."""
        return self.speeds[-1]

    @property
    def s_min(self) -> float:
        """Slowest available speed (Hz)."""
        return self.speeds[0]

    def power_at(self, speed: float) -> float:
        """Dynamic power (W) at ``speed`` (must be one of :attr:`speeds`)."""
        try:
            return self.dyn_power[self.speeds.index(speed)]
        except ValueError:
            raise ValueError(f"{speed} is not an available speed") from None

    def slowest_feasible(self, work: float, period: float) -> float | None:
        """Slowest speed executing ``work`` cycles within ``period`` seconds.

        Returns ``None`` when even the fastest speed cannot meet the period.
        This is the speed-selection rule the paper states ("the minimum
        speed that allows for computing all the stages within the period");
        see :meth:`best_feasible` for the energy-optimal variant.
        """
        if period <= 0:
            return None
        if work == 0:
            return self.speeds[0]
        # Tolerant comparison: callers reason in "work <= T * s" space and
        # float division must not flip a boundary case.
        for s in self.speeds:
            if work <= s * period * (1.0 + 1e-12):
                return s
        return None

    def best_feasible(self, work: float, period: float) -> float | None:
        """The *energy-optimal* feasible speed for ``work`` within ``period``.

        The paper's heuristics pick the slowest feasible speed, implicitly
        assuming energy per cycle ``P_dyn(s)/s`` increases with ``s``.  The
        XScale table violates this at the bottom (0.08/0.15 GHz > 0.17/0.4
        GHz per cycle), so the energy-minimal feasible speed can be a notch
        *above* the slowest feasible one.  All solvers in this library use
        this rule so that, e.g., Theorem 1's DP is genuinely optimal under
        the stated energy model.  Returns ``None`` when infeasible.
        """
        if period <= 0:
            return None
        if work == 0:
            # No dynamic energy either way; report the slowest speed.
            return self.speeds[0]
        best: float | None = None
        best_epc = float("inf")
        for s, pw in zip(self.speeds, self.dyn_power):
            if work <= s * period * (1.0 + 1e-12):
                epc = pw / s
                if epc < best_epc:
                    best, best_epc = s, epc
        return best

    def comp_energy(self, work: float, speed: float, period: float) -> float:
        """Energy (J) of one active core: leakage over ``period`` + dynamic.

        ``E = P_leak * T + (work / speed) * P_dyn(speed)`` per Section 3.5.
        """
        return self.comp_leak * period + (work / speed) * self.power_at(speed)

    def comm_energy(self, volume_bytes: float) -> float:
        """Dynamic energy (J) of sending ``volume_bytes`` across one link hop."""
        return 8.0 * volume_bytes * self.e_bit

    def link_capacity(self, period: float) -> float:
        """Maximum bytes one link direction can carry per period."""
        return self.bandwidth * period

    def scaled(self, factor: float) -> "PowerModel":
        """A frequency-scaled copy of this model (heterogeneous cores).

        Every DVFS speed is multiplied by ``factor`` and the dynamic power
        scales linearly with it (same operating voltages, higher clock:
        ``P = C V^2 f``).  Leakage, link energy and bandwidth are
        unchanged — heterogeneity is a per-core *compute* property, the
        interconnect stays shared.  ``factor`` must be positive;
        ``scaled(1.0)`` returns ``self`` unchanged.
        """
        if factor <= 0:
            raise ValueError("speed scale factor must be positive")
        if factor == 1.0:
            return self
        return PowerModel(
            speeds=tuple(s * factor for s in self.speeds),
            dyn_power=tuple(p * factor for p in self.dyn_power),
            comp_leak=self.comp_leak,
            comm_leak=self.comm_leak,
            e_bit=self.e_bit,
            bandwidth=self.bandwidth,
        )


def xscale_model(
    bandwidth: float = 16 * 1.2 * GHZ,
    e_bit: float = 6e-12,
) -> PowerModel:
    """The Intel XScale configuration of Section 6.1.2."""
    return PowerModel(
        speeds=(0.15 * GHZ, 0.4 * GHZ, 0.6 * GHZ, 0.8 * GHZ, 1.0 * GHZ),
        dyn_power=(0.08, 0.17, 0.40, 0.90, 1.60),
        comp_leak=0.08,
        comm_leak=0.0,
        e_bit=e_bit,
        bandwidth=bandwidth,
    )


#: Module-level default XScale model (immutable).
XSCALE = xscale_model()
