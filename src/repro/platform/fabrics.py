"""Concrete NoC fabrics beyond the paper's mesh, and the registry entries.

Four families plug into the :class:`~repro.platform.topology.Topology`
interface here:

* :class:`~repro.platform.cmp.CMPGrid` — the paper's ``p x q`` mesh
  (registered as ``mesh``, and as ``uniline`` for the Section-4.1
  uni-directional 1 x pq configuration); the golden-equivalence fixtures
  pin its behaviour bit-for-bit.
* :class:`TorusTopology` — the mesh plus wraparound links, routed
  dimension-ordered the shorter way around each ring.
* :class:`RingTopology` — a ring of ``r`` cores (optionally
  uni-directional), generalising the uni-line platform.
* :class:`BenesTopology` — a Benes-style multistage fabric built from two
  back-to-back butterflies, with deterministic distributed bit-fixing
  routing (cf. Benes-based optical NoCs, arXiv:1109.0752, and recent
  Benes topology variants, arXiv:2411.04135).

``hetmesh`` registers a heterogeneous-speed example: a mesh with a
big.LITTLE checkerboard of frequency scaling factors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platform.cmp import CMPGrid, Core
from repro.platform.routing import torus_path
from repro.platform.speeds import XSCALE, PowerModel
from repro.platform.topology import Topology, register_topology

__all__ = ["TorusTopology", "RingTopology", "BenesTopology"]


# ----------------------------------------------------------------------
# Torus
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TorusTopology(CMPGrid):
    """A ``p x q`` 2D torus: the mesh plus wraparound row/column links.

    Routing is dimension-ordered like XY but takes the shorter way around
    each ring (ties towards increasing coordinates).  The snake line
    embedding of the mesh is inherited — snake-consecutive cores are mesh
    neighbours, hence torus links too.
    """

    name = "torus"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.uni_directional:
            raise ValueError("the torus is always bidirectional")

    def neighbors(self, core: Core) -> list[Core]:
        u, v = core
        p, q = self.p, self.q
        cand = [
            (u, (v + 1) % q),
            (u, (v - 1) % q),
            ((u + 1) % p, v),
            ((u - 1) % p, v),
        ]
        # 1- and 2-wide dimensions make wrap and direct hops coincide.
        return [c for c in dict.fromkeys(cand) if c != core]

    def is_link(self, a: Core, b: Core) -> bool:
        if not (self.in_bounds(a) and self.in_bounds(b)) or a == b:
            return False
        (u1, v1), (u2, v2) = a, b
        du = min((u1 - u2) % self.p, (u2 - u1) % self.p)
        dv = min((v1 - v2) % self.q, (v2 - v1) % self.q)
        return du + dv == 1

    def route(self, src: Core, dst: Core) -> list[Core]:
        return torus_path(self.p, self.q, src, dst)

    def forward_neighbors(self, core: Core) -> list[Core]:
        """Right and down with wraparound (Greedy never self-forwards)."""
        u, v = core
        cand = [(u, (v + 1) % self.q), ((u + 1) % self.p, v)]
        return [c for c in dict.fromkeys(cand) if c != core]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TorusTopology({self.p}x{self.q})"


# ----------------------------------------------------------------------
# Ring / uni-line generalisation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RingTopology(Topology):
    """A ring of ``r`` cores ``(0, 0) .. (0, r-1)``.

    The bidirectional ring routes the shorter way around (ties forward);
    with ``uni_directional=True`` only forward links ``v -> (v+1) % r``
    exist, generalising the Section-4.1 uni-line (which a ring closes into
    a loop).  The line embedding is the natural order, so the 1D DP maps
    onto it exactly as onto the uni-line.
    """

    name = "ring"

    r: int
    model: PowerModel = field(default=XSCALE)
    uni_directional: bool = False
    speed_scales: tuple[tuple[Core, float], ...] | None = None
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.r < 1:
            raise ValueError("ring size must be positive")

    @property
    def p(self) -> int:
        return 1

    @property
    def q(self) -> int:
        return self.r

    @property
    def n_cores(self) -> int:
        return self.r

    def cores(self) -> list[Core]:
        cached = self._cache.get("cores")
        if cached is None:
            cached = self._cache["cores"] = [(0, v) for v in range(self.r)]
        return cached

    def in_bounds(self, core: Core) -> bool:
        u, v = core
        return u == 0 and 0 <= v < self.r

    def neighbors(self, core: Core) -> list[Core]:
        _u, v = core
        r = self.r
        cand = [(0, (v + 1) % r)]
        if not self.uni_directional:
            cand.append((0, (v - 1) % r))
        return [c for c in dict.fromkeys(cand) if c != core]

    def is_link(self, a: Core, b: Core) -> bool:
        if not (self.in_bounds(a) and self.in_bounds(b)) or a == b:
            return False
        diff = (b[1] - a[1]) % self.r
        if diff == 1:
            return True
        return not self.uni_directional and diff == self.r - 1

    def route(self, src: Core, dst: Core) -> list[Core]:
        _u, vs = src
        _u2, vd = dst
        r = self.r
        if vs == vd:
            return [src]
        fwd = (vd - vs) % r
        back = (vs - vd) % r
        step = 1 if self.uni_directional or fwd <= back else -1
        path = [src]
        v = vs
        while v != vd:
            v = (v + step) % r
            path.append((0, v))
        return path

    def forward_neighbors(self, core: Core) -> list[Core]:
        if self.r == 1:
            return []
        return [(0, (core[1] + 1) % self.r)]

    def line_order(self) -> list[Core]:
        return self.cores()

    def line_path(self, i: int, j: int) -> list[Core]:
        """Forward slice of the natural order (always valid links)."""
        if not 0 <= i <= j < self.r:
            raise ValueError("need 0 <= i <= j < r")
        return self.cores()[i : j + 1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "uni" if self.uni_directional else "bi"
        return f"RingTopology(r={self.r}, {kind}-directional)"


# ----------------------------------------------------------------------
# Benes-style multistage fabric
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenesTopology(Topology):
    """A Benes-style multistage fabric over ``N = 2**k`` terminal rows.

    The node graph is two back-to-back butterflies: ``2k + 1`` columns of
    ``N`` cores each; link stage ``c`` (between columns ``c`` and
    ``c + 1``) carries *straight* channels ``(r, c) <-> (r, c+1)`` and
    *cross* channels ``(r, c) <-> (r ^ 2**bit(c), c+1)`` with
    ``bit(c) = k-1-c`` in the first half and ``c-k`` in the second.  All
    channels are bidirectional (one link per direction, model bandwidth
    each), as in the mesh.

    Routing is deterministic distributed bit-fixing: walk straight to the
    middle column, fix the differing row bits through the second
    (inverse-butterfly) half — stage ``k + b`` toggles bit ``b`` — then
    walk straight to the destination column.  Every hop is a fabric link,
    for *any* source/destination pair of nodes, so arbitrary mappings
    validate.
    """

    name = "benes"

    k: int
    model: PowerModel = field(default=XSCALE)
    speed_scales: tuple[tuple[Core, float], ...] | None = None
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("need k >= 1 (2**k terminal rows)")

    @property
    def n_rows(self) -> int:
        """Terminal rows (``2**k``)."""
        return 1 << self.k

    @property
    def n_columns(self) -> int:
        """Node columns (``2k + 1``)."""
        return 2 * self.k + 1

    # Bounding box for rendering and the 2D DP.
    @property
    def p(self) -> int:
        return self.n_rows

    @property
    def q(self) -> int:
        return self.n_columns

    @property
    def n_cores(self) -> int:
        return self.n_rows * self.n_columns

    def bit(self, c: int) -> int:
        """The row bit toggled by the cross channels of link stage ``c``."""
        if not 0 <= c < 2 * self.k:
            raise ValueError(f"link stage out of range: {c}")
        return self.k - 1 - c if c < self.k else c - self.k

    def cores(self) -> list[Core]:
        cached = self._cache.get("cores")
        if cached is None:
            cached = self._cache["cores"] = [
                (u, v)
                for u in range(self.n_rows)
                for v in range(self.n_columns)
            ]
        return cached

    def in_bounds(self, core: Core) -> bool:
        u, v = core
        return 0 <= u < self.n_rows and 0 <= v < self.n_columns

    def neighbors(self, core: Core) -> list[Core]:
        u, v = core
        out: list[Core] = []
        if v + 1 < self.n_columns:
            out.append((u, v + 1))
            out.append((u ^ (1 << self.bit(v)), v + 1))
        if v > 0:
            out.append((u, v - 1))
            out.append((u ^ (1 << self.bit(v - 1)), v - 1))
        return out

    def is_link(self, a: Core, b: Core) -> bool:
        if not (self.in_bounds(a) and self.in_bounds(b)):
            return False
        (u1, v1), (u2, v2) = a, b
        if abs(v1 - v2) != 1:
            return False
        if u1 == u2:
            return True
        return (u1 ^ u2) == (1 << self.bit(min(v1, v2)))

    def route(self, src: Core, dst: Core) -> list[Core]:
        (r1, c1), (r2, c2) = src, dst
        k = self.k
        need = r1 ^ r2
        path: list[Core] = [(r1, c1)]
        if need == 0:
            step = 1 if c2 >= c1 else -1
            for c in range(c1 + step, c2 + step, step) if c1 != c2 else []:
                path.append((r1, c))
            return path
        # Straight to the first needed stage of the second half: stage
        # k + b (between columns k + b and k + b + 1) toggles row bit b,
        # so the walk starts at column k + lb for the lowest set bit lb.
        lb = (need & -need).bit_length() - 1
        hb = need.bit_length() - 1
        cstart = k + lb
        step = 1 if cstart > c1 else -1
        for c in range(c1 + step, cstart + step, step) if c1 != cstart else []:
            path.append((r1, c))
        # Fix the differing bits, least-significant first.
        row = r1
        for b in range(lb, hb + 1):
            if (need >> b) & 1:
                row ^= 1 << b
            path.append((row, k + b + 1))
        # Straight to the destination column.
        cend = k + hb + 1
        step = 1 if c2 > cend else -1
        for c in range(cend + step, c2 + step, step) if cend != c2 else []:
            path.append((row, c))
        return path

    def forward_neighbors(self, core: Core) -> list[Core]:
        """Straight and cross channels into the next column."""
        u, v = core
        if v + 1 >= self.n_columns:
            return []
        return [(u, v + 1), (u ^ (1 << self.bit(v)), v + 1)]

    def line_order(self) -> list[Core]:
        """Column-major order; inter-position hops use :meth:`route`."""
        cached = self._cache.get("line_order")
        if cached is None:
            cached = self._cache["line_order"] = [
                (u, v)
                for v in range(self.n_columns)
                for u in range(self.n_rows)
            ]
        return cached

    def describe(self) -> str:
        return (
            super().describe()
            + f"; {self.n_rows} terminal rows, {2 * self.k} link stages"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BenesTopology(k={self.k}, {self.n_rows}x{self.n_columns})"


# ----------------------------------------------------------------------
# Registry entries
# ----------------------------------------------------------------------
@register_topology(
    "mesh", "p x q bidirectional mesh with XY routing (the paper's platform)"
)
def _build_mesh(
    p: int,
    q: int,
    model: PowerModel,
    *,
    uni_directional: bool = False,
    speed_scales=None,
) -> CMPGrid:
    return CMPGrid(
        p, q, model, uni_directional=uni_directional,
        speed_scales=speed_scales,
    )


@register_topology(
    "uniline", "1 x (p*q) uni-directional line (Section 4.1 platform)"
)
def _build_uniline(
    p: int, q: int, model: PowerModel, *, speed_scales=None
) -> CMPGrid:
    return CMPGrid(
        1, p * q, model, uni_directional=True, speed_scales=speed_scales
    )


@register_topology(
    "torus", "p x q torus: mesh plus wraparound links, shortest-way routing"
)
def _build_torus(
    p: int, q: int, model: PowerModel, *, speed_scales=None
) -> TorusTopology:
    return TorusTopology(p, q, model, speed_scales=speed_scales)


@register_topology(
    "ring", "bidirectional ring of p*q cores, shortest-way routing"
)
def _build_ring(
    p: int,
    q: int,
    model: PowerModel,
    *,
    uni_directional: bool = False,
    speed_scales=None,
) -> RingTopology:
    return RingTopology(
        p * q, model, uni_directional=uni_directional,
        speed_scales=speed_scales,
    )


@register_topology(
    "uniring", "uni-directional ring of p*q cores (closed uni-line)"
)
def _build_uniring(
    p: int, q: int, model: PowerModel, *, speed_scales=None
) -> RingTopology:
    return RingTopology(
        p * q, model, uni_directional=True, speed_scales=speed_scales
    )


@register_topology(
    "benes",
    "Benes-style multistage fabric; terminal rows = 2**ceil(log2 p), "
    "2*log2(rows)+1 node columns (q is implied by the fabric depth)",
)
def _build_benes(
    p: int, q: int, model: PowerModel, *, speed_scales=None
) -> BenesTopology:
    k = max(1, (max(2, p) - 1).bit_length())
    return BenesTopology(k, model, speed_scales=speed_scales)


@register_topology(
    "hetmesh",
    "p x q mesh with a big.LITTLE checkerboard of per-core speed scaling "
    "(even-parity cores at 1.0x, odd-parity at 0.5x)",
)
def _build_hetmesh(
    p: int,
    q: int,
    model: PowerModel,
    *,
    little_scale: float = 0.5,
    speed_scales=None,
) -> CMPGrid:
    if speed_scales is None:
        speed_scales = tuple(
            (((u, v), 1.0 if (u + v) % 2 == 0 else little_scale))
            for u in range(p)
            for v in range(q)
        )
    return CMPGrid(p, q, model, speed_scales=speed_scales)
