"""Chip-multiprocessor platform model (Section 3.2).

A :class:`CMPGrid` is a ``p x q`` array of cores — the paper's platform
and the default (and golden-pinned) :class:`~repro.platform.topology
.Topology` implementation.  Neighbouring cores are joined by
bi-directional links (one channel per direction) with bandwidth ``BW``
each.  The grid can also be *configured* as a uni-line array (Section
4.1/4.2): :meth:`CMPGrid.uni_line` builds 1 x r platforms, optionally
uni-directional, and :func:`repro.platform.routing.snake_order` embeds a
logical line into a physical grid.

Cores are addressed ``(u, v)`` with ``0 <= u < p`` (row) and ``0 <= v < q``
(column); note the paper uses 1-based indices.  Directed links are pairs
``((u, v), (u', v'))`` of neighbouring cores.

Optionally, ``speed_scales`` assigns per-core DVFS frequency scaling
factors (heterogeneous platforms, e.g. big.LITTLE checkerboards); the
scaled per-core power models come from
:meth:`~repro.platform.topology.Topology.core_model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.platform.speeds import XSCALE, PowerModel
from repro.platform.topology import Topology

__all__ = ["CMPGrid", "Core", "Link"]

Core = tuple[int, int]
Link = tuple[Core, Core]


@dataclass(frozen=True)
class CMPGrid(Topology):
    """A ``p x q`` grid of DVFS-capable cores.

    Parameters
    ----------
    p, q:
        Grid dimensions (rows x columns).
    model:
        The DVFS/power model shared by all cores (per-core scaling via
        ``speed_scales``).
    uni_directional:
        When true, only "forward" link directions exist: left-to-right
        within a row and top-to-bottom within a column.  Used for the
        uni-directional uni-line CMP of Section 4.1 (typically with p=1).
    speed_scales:
        Optional tuple of ``((u, v), factor)`` pairs giving heterogeneous
        per-core frequency scaling; absent cores default to 1.0.
    """

    name = "mesh"

    p: int
    q: int
    model: PowerModel = field(default=XSCALE)
    uni_directional: bool = False
    speed_scales: tuple[tuple[Core, float], ...] | None = None
    #: Instance-local derived-data cache (core/link lists, scaled models);
    #: excluded from equality/hash, as ``SPG.cached`` is.
    _cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.p < 1 or self.q < 1:
            raise ValueError("grid dimensions must be positive")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def square(p: int, model: PowerModel = XSCALE) -> "CMPGrid":
        """A ``p x p`` square CMP (Section 4.3)."""
        return CMPGrid(p, p, model)

    @staticmethod
    def uni_line(
        r: int, model: PowerModel = XSCALE, uni_directional: bool = False
    ) -> "CMPGrid":
        """A ``1 x r`` uni-line CMP (Sections 4.1 and 4.2)."""
        return CMPGrid(1, r, model, uni_directional=uni_directional)

    # ------------------------------------------------------------------
    # Topology: node and link sets
    # ------------------------------------------------------------------
    @property
    def n_cores(self) -> int:
        return self.p * self.q

    def cores(self) -> list[Core]:
        """All cores in row-major order (cached; treat read-only)."""
        cached = self._cache.get("cores")
        if cached is None:
            cached = self._cache["cores"] = [
                (u, v) for u in range(self.p) for v in range(self.q)
            ]
        return cached

    def in_bounds(self, core: Core) -> bool:
        u, v = core
        return 0 <= u < self.p and 0 <= v < self.q

    def neighbors(self, core: Core) -> list[Core]:
        """Cores reachable from ``core`` over one link hop."""
        u, v = core
        if self.uni_directional:
            cand = [(u, v + 1), (u + 1, v)]
        else:
            cand = [(u, v + 1), (u, v - 1), (u + 1, v), (u - 1, v)]
        return [c for c in cand if self.in_bounds(c)]

    def is_link(self, a: Core, b: Core) -> bool:
        """True iff ``(a, b)`` is a usable directed link."""
        if not (self.in_bounds(a) and self.in_bounds(b)):
            return False
        (u1, v1), (u2, v2) = a, b
        man = abs(u1 - u2) + abs(v1 - v2)
        if man != 1:
            return False
        if self.uni_directional and (u2 < u1 or v2 < v1):
            return False
        return True

    def links(self) -> list[Link]:
        """All directed links of the platform (cached; treat read-only)."""
        cached = self._cache.get("links")
        if cached is None:
            cached = self._cache["links"] = [
                (c, nb) for c in self.cores() for nb in self.neighbors(c)
            ]
        return cached

    # ------------------------------------------------------------------
    # Topology: routing and line embedding
    # ------------------------------------------------------------------
    def route(self, src: Core, dst: Core) -> list[Core]:
        """XY routing (the paper's default for arbitrary mappings)."""
        from repro.platform.routing import xy_path

        return xy_path(src, dst)

    def forward_neighbors(self, core: Core) -> list[Core]:
        """Greedy forwards to the right and down neighbours (Section 5.2)."""
        u, v = core
        return [
            c for c in ((u, v + 1), (u + 1, v)) if self.in_bounds(c)
        ]

    def line_order(self) -> list[Core]:
        """The boustrophedon snake embedding (Section 5.4)."""
        from repro.platform.routing import snake_order

        return snake_order(self.p, self.q)

    def line_path(self, i: int, j: int) -> list[Core]:
        """The snake slice between positions ``i <= j`` (physical links)."""
        from repro.platform.routing import snake_path

        return snake_path(self, i, j)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "uni" if self.uni_directional else "bi"
        return f"CMPGrid({self.p}x{self.q}, {kind}-directional)"
