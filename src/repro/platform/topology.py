"""The pluggable platform abstraction: topologies and their registry.

The paper fixes the platform to a homogeneous ``p x q`` mesh with XY/snake
routing (Section 3.2).  This module generalises that into a *topology*
interface so that richer NoC fabrics — tori, rings, Benes-style multistage
networks — and heterogeneous per-core speed configurations plug into the
same evaluation core, heuristics and experiment harness.

A :class:`Topology` provides

* the **node set** (``cores()``, ``in_bounds``, ``n_cores``) addressed as
  ``(u, v)`` integer pairs inside a ``p x q`` bounding box (kept for
  rendering and the 2D dynamic programs),
* the **link set** (``links()``, ``is_link``, ``neighbors``) of directed
  one-hop channels, each with the model bandwidth per direction,
* a deterministic **routing policy** ``route(src, dst)`` returning the
  inclusive core path used for a remote communication (the mesh uses XY
  routing; other fabrics bring their own distributed schemes),
* a **line embedding** (``line_order``/``line_path``) that the 1D
  heuristics (DPA1D, DPA2D1D) map clusters along (the mesh uses the
  boustrophedon snake),
* a **per-core speed model** (``core_model``, ``core_speed``,
  ``speed_scale``) wiring heterogeneous DVFS scaling into the shared
  :class:`~repro.platform.speeds.PowerModel`.

Concrete fabrics register themselves under a string key (see
:func:`register_topology`); ``get_topology(name, p, q)`` builds one, which
is what the CLI's ``--topology`` flag and the scenario sweep engine use.

All topologies are immutable after construction; derived data (core and
link lists, scaled power models) is cached on the instance in a
comparison-excluded slot, mirroring ``SPG.cached``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.platform.speeds import XSCALE, PowerModel

__all__ = [
    "Topology",
    "TopologySpec",
    "TOPOLOGIES",
    "register_topology",
    "get_topology",
    "topology_names",
]

Core = tuple[int, int]
Link = tuple[Core, Core]


class Topology(ABC):
    """Abstract platform topology (see the module docstring).

    Subclasses must provide the attributes ``p``, ``q`` (bounding-box
    dimensions), ``model`` (the base :class:`PowerModel`) and
    ``speed_scales`` (``None`` for homogeneous platforms, else a tuple of
    ``(core, factor)`` pairs), a ``_cache`` dict excluded from equality,
    and implement the abstract methods below.  Everything else has a
    default implementation in terms of those.
    """

    #: Registry key of the concrete fabric (class attribute).
    name: str = "abstract"

    # -- node set ------------------------------------------------------
    @abstractmethod
    def cores(self) -> list[Core]:
        """All cores, in the topology's canonical order (treat read-only)."""

    @property
    def n_cores(self) -> int:
        return len(self.cores())

    def in_bounds(self, core: Core) -> bool:
        """True iff ``core`` is a node of this topology."""
        cached = self._cache.get("core_set")
        if cached is None:
            cached = self._cache["core_set"] = frozenset(self.cores())
        return core in cached

    # -- link set ------------------------------------------------------
    @abstractmethod
    def neighbors(self, core: Core) -> list[Core]:
        """Cores reachable from ``core`` over one directed link hop."""

    def is_link(self, a: Core, b: Core) -> bool:
        """True iff ``(a, b)`` is a usable directed link."""
        return self.in_bounds(a) and b in self.neighbors(a)

    def links(self) -> list[Link]:
        """All directed links (cached on the instance; treat read-only)."""
        cached = self._cache.get("links")
        if cached is None:
            cached = self._cache["links"] = [
                (c, nb) for c in self.cores() for nb in self.neighbors(c)
            ]
        return cached

    def validate_path(self, path: Sequence[Core]) -> None:
        """Raise ``ValueError`` unless ``path`` is a chain of valid links.

        A single-core path is valid when the core is in bounds (a remote
        route degenerating to its endpoint); an empty path never is.
        """
        if not path:
            raise ValueError("a path needs at least one core")
        if not self.in_bounds(path[0]):
            raise ValueError(f"{path[0]} is not a core of this platform")
        for a, b in zip(path, path[1:]):
            if not self.is_link(a, b):
                raise ValueError(
                    f"({a} -> {b}) is not a link of this platform"
                )

    # -- routing -------------------------------------------------------
    @abstractmethod
    def route(self, src: Core, dst: Core) -> list[Core]:
        """The deterministic route from ``src`` to ``dst``, inclusive.

        Every consecutive pair of the result must satisfy :meth:`is_link`;
        ``route(c, c)`` returns ``[c]``.
        """

    def forward_neighbors(self, core: Core) -> list[Core]:
        """Cores the Greedy heuristic forwards unplaced stages to.

        The mesh forwards right and down (the paper's rule); fabrics with
        a different notion of "forward" override this.  The default is the
        full neighbor set, which keeps Greedy terminating (processed cores
        are never revisited) on arbitrary topologies.
        """
        return self.neighbors(core)

    def start_core(self) -> Core:
        """Where Greedy seeds the source stage (first canonical core)."""
        return self.cores()[0]

    # -- line embedding (1D heuristics) --------------------------------
    def line_order(self) -> list[Core]:
        """The cores enumerated along the topology's 1D line embedding.

        DPA1D and DPA2D1D place cluster ``t`` on ``line_order()[t]``.  The
        default is the canonical core order; topologies with a physically
        linked line (the mesh snake, rings) override this so that
        consecutive positions are one hop apart.
        """
        return self.cores()

    def line_path(self, i: int, j: int) -> list[Core]:
        """The physical path from line position ``i`` to ``j >= i``.

        The default concatenates :meth:`route` segments between
        consecutive line positions, which is valid on any topology;
        fabrics whose line embedding follows physical links override this
        with the exact link chain (the mesh returns the snake slice).
        """
        order = self.line_order()
        if not 0 <= i <= j < len(order):
            raise ValueError("need 0 <= i <= j < n_cores")
        path = [order[i]]
        for t in range(i, j):
            path.extend(self.route(order[t], order[t + 1])[1:])
        return path

    # -- per-core speed model ------------------------------------------
    def speed_scale(self, core: Core) -> float:
        """The DVFS frequency scaling factor of ``core`` (1.0 = baseline)."""
        scales = self.speed_scales
        if not scales:
            return 1.0
        table = self._cache.get("speed_scale_table")
        if table is None:
            table = self._cache["speed_scale_table"] = dict(scales)
        return table.get(core, 1.0)

    @property
    def heterogeneous(self) -> bool:
        """True iff at least one core's speed set differs from the base."""
        scales = self.speed_scales
        return bool(scales) and any(f != 1.0 for _c, f in scales)

    def core_model(self, core: Core) -> PowerModel:
        """The :class:`PowerModel` governing ``core`` (scaled if needed)."""
        scale = self.speed_scale(core)
        if scale == 1.0:
            return self.model
        cache = self._cache.setdefault("scaled_models", {})
        m = cache.get(scale)
        if m is None:
            m = cache[scale] = self.model.scaled(scale)
        return m

    def core_speed(self, core: Core, k: int) -> float:
        """Speed number ``k`` of ``core``'s DVFS set, in Hz."""
        return self.core_model(core).speeds[k]

    def speed_set(self, core: Core) -> frozenset[float]:
        """The set of admissible speeds of ``core`` (cached per scale)."""
        scale = self.speed_scale(core)
        cache = self._cache.setdefault("speed_sets", {})
        ss = cache.get(scale)
        if ss is None:
            ss = cache[scale] = frozenset(self.core_model(core).speeds)
        return ss

    # -- description ---------------------------------------------------
    def describe(self) -> str:
        """A short human-readable summary of the platform."""
        het = ""
        if self.heterogeneous:
            scales = sorted({f for _c, f in self.speed_scales})
            het = f", heterogeneous speed scales {scales}"
        return (
            f"{self.name}: {self.n_cores} cores ({self.p}x{self.q} "
            f"bounding box), {len(self.links())} directed links, "
            f"{len(self.model.speeds)} DVFS speeds{het}"
        )


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TopologySpec:
    """A registered topology: its key, a one-line summary and a builder.

    The builder signature is ``builder(p, q, model, **options) ->
    Topology`` where ``(p, q)`` is the requested platform size (each
    fabric documents how it interprets it) and ``model`` the base
    :class:`PowerModel`.
    """

    name: str
    summary: str
    builder: Callable[..., Topology]


#: name -> spec, populated by :func:`register_topology`.
TOPOLOGIES: dict[str, TopologySpec] = {}


def register_topology(name: str, summary: str):
    """Decorator adding a builder to :data:`TOPOLOGIES` under ``name``."""

    def deco(fn: Callable[..., Topology]) -> Callable[..., Topology]:
        TOPOLOGIES[name] = TopologySpec(name, summary, fn)
        return fn

    return deco


def topology_names() -> list[str]:
    """All registered topology keys, sorted."""
    return sorted(TOPOLOGIES)


def get_topology(
    name: str, p: int, q: int, model: PowerModel | None = None, **options
) -> Topology:
    """Build registered topology ``name`` for a ``p x q``-sized platform.

    Raises ``KeyError`` with the available names when ``name`` is unknown.
    """
    spec = TOPOLOGIES.get(name)
    if spec is None:
        raise KeyError(
            f"unknown topology {name!r}; available: "
            f"{', '.join(topology_names())}"
        )
    return spec.builder(p, q, model if model is not None else XSCALE, **options)
