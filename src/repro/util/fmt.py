"""Plain-text table and grid rendering used by examples and benchmarks."""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` as an aligned ASCII table.

    Cells are converted with ``str``; floats are shown with 4 significant
    digits.  Returns a single multi-line string (no trailing newline).
    """

    def cell(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)


def format_grid(p: int, q: int, cells: dict[tuple[int, int], str]) -> str:
    """Render a ``p x q`` grid of short strings (missing cells shown as '.').

    Used to visualise which stages land on which core of the CMP.
    """
    width = max([1] + [len(s) for s in cells.values()])
    rows = []
    for u in range(p):
        row = [cells.get((u, v), ".").rjust(width) for v in range(q)]
        rows.append(" ".join(row))
    return "\n".join(rows)
