"""Random-number-generator plumbing.

Every stochastic component of the library (random SPG generation, the Random
heuristic, weight synthesis for the StreamIt suite) takes either an integer
seed, ``None`` or a :class:`numpy.random.Generator`.  This module provides the
single conversion point so that experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | None | np.random.Generator"


def as_rng(seed) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used by experiment runners so that each replicate gets its own stream and
    results do not depend on evaluation order.
    """
    return [np.random.default_rng(s) for s in rng.integers(0, 2**63 - 1, size=n)]
