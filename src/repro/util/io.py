"""Crash-safe filesystem helpers.

Report and checkpoint files are consumed by byte-level comparison
(``cmp``-based resume/shard/chaos checks in CI), so a torn write —
the process dying mid-``write_text`` — must never leave a half-report
behind masquerading as a complete one.  :func:`atomic_write_text`
writes to a uniquely-named sibling temp file, flushes and fsyncs it,
then :func:`os.replace`\\ s it over the destination: readers see either
the old complete file or the new complete file, never a prefix.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: "str | Path", text: str) -> Path:
    """Atomically replace ``path``'s contents with ``text``.

    The temp file lives in the destination directory (``os.replace``
    must not cross filesystems) and is removed on any failure, so an
    interrupted write leaves no debris and never touches ``path``.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent or "."
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:  # pragma: no cover - already renamed/removed
            pass
        raise
    return path
