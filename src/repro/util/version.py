"""Single source of the package version string.

``repro --version`` and every persistent artefact (sweep reports, batch
service responses, result-store rows) record the same version so that a
store can be audited for entries written by older code.  The version is
read from the installed package metadata when available (``pip install
-e .``) and falls back to ``repro.__version__`` for plain
``PYTHONPATH=src`` checkouts.
"""

from __future__ import annotations

from importlib import metadata

__all__ = ["repro_version"]


def repro_version() -> str:
    """The package version, from metadata or the in-tree fallback."""
    try:
        return metadata.version("repro")
    except metadata.PackageNotFoundError:
        import repro

        return repro.__version__
