"""Bitset helpers over plain Python integers.

Node subsets of an SPG (order ideals, clusters) are represented as arbitrary
precision integers: bit ``i`` set means node ``i`` belongs to the set.  Python
ints give O(n/64) set operations and hash for memoisation, which is what the
dynamic programs in :mod:`repro.heuristics` rely on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator


def bit(i: int) -> int:
    """The singleton bitset ``{i}``."""
    return 1 << i


def mask_of(items: Iterable[int]) -> int:
    """Bitset containing every index in ``items``."""
    m = 0
    for i in items:
        m |= 1 << i
    return m


def popcount(m: int) -> int:
    """Number of elements in the bitset ``m``."""
    return m.bit_count()


def iter_bits(m: int) -> Iterator[int]:
    """Yield the indices present in bitset ``m`` in increasing order."""
    while m:
        low = m & -m
        yield low.bit_length() - 1
        m ^= low


def bits_of(m: int) -> list[int]:
    """The indices present in bitset ``m``, as a list (increasing order)."""
    return list(iter_bits(m))
