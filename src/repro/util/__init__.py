"""Small shared utilities: RNG handling, formatting, bitset helpers."""

from repro.util.rng import as_rng, spawn_rng
from repro.util.fmt import format_table, format_grid
from repro.util.bitset import (
    bit,
    bits_of,
    popcount,
    mask_of,
    iter_bits,
)

__all__ = [
    "as_rng",
    "spawn_rng",
    "format_table",
    "format_grid",
    "bit",
    "bits_of",
    "popcount",
    "mask_of",
    "iter_bits",
]
