"""Exact solvers for tiny instances: brute force and the Section-4.4 ILP."""

from repro.exact.brute_force import brute_force_optimal, enumerate_dag_partitions
from repro.exact.ilp_model import (
    IlpModel,
    build_ilp,
    ilp_optimal,
    require_ilp_platform,
)
from repro.exact.bnb import BnBResult, solve_binary_program

__all__ = [
    "brute_force_optimal",
    "enumerate_dag_partitions",
    "IlpModel",
    "build_ilp",
    "ilp_optimal",
    "require_ilp_platform",
    "BnBResult",
    "solve_binary_program",
]
