"""A small 0-1 branch-and-bound over scipy's LP solver.

Substitution for ILOG CPLEX (unavailable offline): minimises ``c @ x`` over
binary ``x`` subject to ``A_ub @ x <= b_ub`` and ``A_eq @ x == b_eq``, using
HiGHS LP relaxations and depth-first branching on the most fractional
variable.  Intended for the tiny instances the paper itself was limited to
(it reports CPLEX could not get past 2x2 CMPs either).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

__all__ = ["BnBResult", "solve_binary_program"]

_INT_TOL = 1e-6


@dataclass
class BnBResult:
    """Outcome of a branch-and-bound run."""

    status: str  # "optimal", "infeasible" or "node-limit"
    x: np.ndarray | None
    objective: float
    nodes: int


def _solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, lo, hi):
    res = linprog(
        c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=np.column_stack([lo, hi]),
        method="highs",
    )
    if not res.success:
        return None
    return res


def solve_binary_program(
    c: np.ndarray,
    A_ub: np.ndarray | None,
    b_ub: np.ndarray | None,
    A_eq: np.ndarray | None,
    b_eq: np.ndarray | None,
    max_nodes: int = 20_000,
) -> BnBResult:
    """Depth-first 0-1 branch & bound with best-incumbent pruning."""
    n = len(c)
    c = np.asarray(c, dtype=float)
    best_x: np.ndarray | None = None
    best_obj = float("inf")
    nodes = 0
    # Stack of (lo, hi) variable-bound vectors.
    stack: list[tuple[np.ndarray, np.ndarray]] = [
        (np.zeros(n), np.ones(n))
    ]
    hit_limit = False
    while stack:
        lo, hi = stack.pop()
        nodes += 1
        if nodes > max_nodes:
            hit_limit = True
            break
        res = _solve_relaxation(c, A_ub, b_ub, A_eq, b_eq, lo, hi)
        if res is None:
            continue
        if res.fun >= best_obj - 1e-12:
            continue  # bound: cannot improve the incumbent
        x = res.x
        frac = np.abs(x - np.round(x))
        j = int(np.argmax(frac))
        if frac[j] <= _INT_TOL:
            # Integral solution: new incumbent.
            best_x = np.round(x)
            best_obj = float(c @ best_x)
            continue
        # Branch on the most fractional variable; explore the side closer
        # to the LP value first (pushed last -> popped first).
        lo1, hi1 = lo.copy(), hi.copy()
        lo2, hi2 = lo.copy(), hi.copy()
        hi1[j] = 0.0  # x_j = 0
        lo2[j] = 1.0  # x_j = 1
        if x[j] >= 0.5:
            stack.append((lo1, hi1))
            stack.append((lo2, hi2))
        else:
            stack.append((lo2, hi2))
            stack.append((lo1, hi1))
    if best_x is None:
        return BnBResult(
            "node-limit" if hit_limit else "infeasible", None, float("inf"), nodes
        )
    return BnBResult(
        "node-limit" if hit_limit else "optimal", best_x, best_obj, nodes
    )
