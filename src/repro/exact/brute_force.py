"""Exhaustive optimal solver for tiny MinEnergy(T) instances.

Enumerates every DAG-partition of the SPG (via the order-ideal peeling of
Section 4.1, which generates exactly the acyclic partitions *ordered* by a
topological order of their quotient), every injective placement of the
clusters onto cores, the platform topology's own deterministic routing
(XY on the mesh, shortest-way on tori/rings, bit-fixing on the Benes
fabric), and the energy-optimal per-core speeds — drawn from each core's
own, possibly heterogeneous, DVFS model, so the solver is threaded
through the PR-2 topology abstraction like the heuristics are.

Exponential, of course — use only for ``n`` up to ~8 and grids up to 3x3.
The test suite uses it as ground truth for the heuristics and the ILP.
"""

from __future__ import annotations

from itertools import permutations

from repro.core.errors import HeuristicFailure
from repro.core.evaluate import energy, is_period_feasible
from repro.core.mapping import Mapping
from repro.core.partition import IdealLattice
from repro.core.problem import ProblemInstance
from repro.util.bitset import bits_of

__all__ = ["enumerate_dag_partitions", "brute_force_optimal"]


def enumerate_dag_partitions(
    problem: ProblemInstance, max_clusters: int | None = None
) -> list[list[list[int]]]:
    """All DAG-partitions of the SPG, as ordered cluster lists.

    Each partition is a list of clusters in a quotient-topological order
    (earlier clusters never depend on later ones).  A partition whose
    quotient admits several topological orders is produced once per
    *ordered* peeling, so callers treating the result as unordered should
    de-duplicate; the optimal-search below does not need to (it evaluates
    placements over all permutations anyway).
    """
    spg = problem.spg
    grid = problem.grid
    # Prune clusters by the *fastest* core of the platform: on
    # heterogeneous fabrics a scaled-up core can execute work the base
    # model cannot, so capping at ``grid.model.s_max`` would silently
    # discard feasible partitions (on homogeneous platforms the two caps
    # are identical).
    s_max = max(grid.core_model(c).s_max for c in grid.cores())
    cap = problem.period * s_max
    lat = IdealLattice(spg, budget=1 << 20)
    limit = max_clusters if max_clusters is not None else problem.grid.n_cores

    seen: set[tuple[int, ...]] = set()
    out: list[list[list[int]]] = []

    def rec(remaining: int, chosen: tuple[int, ...]) -> None:
        if remaining == 0:
            key = tuple(sorted(chosen))
            if key not in seen:
                seen.add(key)
                out.append([bits_of(c) for c in reversed(chosen)])
            return
        if len(chosen) == limit:
            return
        for h in lat.suffix_clusters(remaining, cap):
            rec(remaining & ~h, chosen + (h,))

    rec(lat.full, ())
    return out


def brute_force_optimal(
    problem: ProblemInstance,
) -> tuple[Mapping, float]:
    """The provably optimal DAG-partition mapping under topology routing.

    Clusters are placed on cores over all injective placements; each core
    gets the slowest feasible speed of *its own* DVFS model (optimal for a
    fixed assignment because energy per cycle increases with speed).
    Raises :class:`HeuristicFailure` when no feasible mapping exists.

    Note the paper's model leaves the *routing* free; we fix the
    topology's deterministic ``route`` policy (XY on the mesh), which is
    what every heuristic here uses — placements whose routes are invalid
    on the fabric (e.g. backward hops on uni-directional lines) are
    rejected by the structural check.  On uni-line platforms the route
    is unique, so the result is exactly optimal there.
    """
    spg, grid, T = problem.spg, problem.grid, problem.period
    cores = grid.cores()
    best: Mapping | None = None
    best_e = float("inf")
    for clusters in enumerate_dag_partitions(problem):
        k = len(clusters)
        for placement in permutations(cores, k):
            cluster_map = {placement[t]: clusters[t] for t in range(k)}
            try:
                mapping = Mapping.from_clusters(spg, grid, cluster_map, T)
            except Exception:
                continue
            if not is_period_feasible(mapping, T):
                continue
            if not mapping.is_valid_structure():
                continue
            e = energy(mapping, T).total
            if e < best_e:
                best, best_e = mapping, e
    if best is None:
        raise HeuristicFailure("brute force: no feasible mapping")
    return best, best_e
