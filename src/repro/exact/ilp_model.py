"""The integer linear program of Section 4.4, solved by branch & bound.

Variables (all boolean):

* ``x[i,k,u,v]``  — stage ``i`` on core ``(u,v)`` at speed ``s(k)``;
* ``m[k,u,v]``    — core ``(u,v)`` operated at speed ``s(k)``;
* ``c[i,j,dir,u,v]`` — edge ``(i,j)`` communicated from ``(u,v)`` toward its
  ``dir`` in {N,S,W,E} neighbour (created only for actual SPG edges and
  in-bounds directions, which implements the paper's border constraints).

Two published constraints are corrected here (noted inline): the speed-
activation constraint is stated per stage (the literal sum form is
infeasible whenever two stages share a core), and the cycle-prevention
constraint bounds incoming flow by ``1 - sum_k x[i,k,u,v]`` (at most one
incoming direction per edge and core, none into the source's core); the
printed form would instead *require* the source core to receive its own
message.

The decoded mapping carries the ILP's own routes, so its evaluated energy
matches the ILP objective exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.errors import HeuristicFailure, UnsupportedPlatform
from repro.core.mapping import Mapping
from repro.core.problem import ProblemInstance
from repro.exact.bnb import solve_binary_program
from repro.spg.analysis import descendant_masks

__all__ = ["IlpModel", "build_ilp", "ilp_optimal", "require_ilp_platform"]

#: direction -> (du, dv)
DIRS = {"N": (-1, 0), "S": (1, 0), "W": (0, -1), "E": (0, 1)}


def require_ilp_platform(problem: ProblemInstance) -> None:
    """Fail loudly unless the platform fits the Section-4.4 formulation.

    The ILP's communication variables encode the bidirectional mesh's
    four link directions and its speed/period constraints assume one
    homogeneous DVFS model for every core.  Other registered fabrics
    (tori, rings, Benes, uni-directional lines) and heterogeneous speed
    scalings would be *silently mis-modelled* — the variables would
    permit links the platform does not have — so they are rejected here
    with a clear error instead.
    """
    from repro.platform.cmp import CMPGrid

    grid = problem.grid
    # Exact-type check on purpose: subclasses (e.g. the torus) keep the
    # mesh's node set but change the link set, which the ILP's N/S/W/E
    # variables cannot express.
    if type(grid) is not CMPGrid or grid.uni_directional:
        raise UnsupportedPlatform(
            f"the Section-4.4 ILP is formulated for the paper's "
            f"bidirectional p x q mesh; topology {grid.name!r} has a "
            "different link structure (use the 'bruteforce' solver, "
            "which follows the topology's own routing)"
        )
    if grid.heterogeneous:
        raise UnsupportedPlatform(
            "the Section-4.4 ILP assumes one homogeneous DVFS model for "
            "all cores; this platform has per-core speed scaling (use "
            "the 'bruteforce' solver, which honours per-core models)"
        )


@dataclass
class IlpModel:
    """Assembled matrices plus the variable index maps for decoding."""

    problem: ProblemInstance
    c: np.ndarray
    A_ub: np.ndarray
    b_ub: np.ndarray
    A_eq: np.ndarray
    b_eq: np.ndarray
    x_idx: dict[tuple[int, int, int, int], int]
    m_idx: dict[tuple[int, int, int], int]
    c_idx: dict[tuple[int, int, str, int, int], int]

    @property
    def n_vars(self) -> int:
        return len(self.c)

    # ------------------------------------------------------------------
    def decode(self, sol: np.ndarray) -> Mapping:
        """Turn a binary solution vector into a Mapping with ILP routes."""
        problem = self.problem
        spg, grid = problem.spg, problem.grid
        speeds_list = grid.model.speeds
        alloc: dict[int, tuple[int, int]] = {}
        speeds: dict[tuple[int, int], float] = {}
        for (i, k, u, v), idx in self.x_idx.items():
            if sol[idx] > 0.5:
                alloc[i] = (u, v)
                speeds[(u, v)] = speeds_list[k]
        paths: dict[tuple[int, int], list[tuple[int, int]]] = {}
        for (i, j) in spg.edges:
            if alloc[i] == alloc[j]:
                continue
            # Follow the communication variables from the source core.
            path = [alloc[i]]
            visited = {alloc[i]}
            while path[-1] != alloc[j]:
                u, v = path[-1]
                nxt = None
                for d, (du, dv) in DIRS.items():
                    idx = self.c_idx.get((i, j, d, u, v))
                    if idx is not None and sol[idx] > 0.5:
                        cand = (u + du, v + dv)
                        if cand not in visited:
                            nxt = cand
                            break
                if nxt is None:
                    raise HeuristicFailure(
                        f"ILP solution has a broken route for edge ({i},{j})"
                    )
                path.append(nxt)
                visited.add(nxt)
            paths[(i, j)] = path
        return Mapping(spg, grid, alloc, speeds, paths)


def build_ilp(problem: ProblemInstance) -> IlpModel:
    """Assemble the Section-4.4 ILP for ``problem``.

    Raises :class:`UnsupportedPlatform` for non-mesh or heterogeneous
    platforms (see :func:`require_ilp_platform`).
    """
    require_ilp_platform(problem)
    spg, grid, T = problem.spg, problem.grid, problem.period
    model = grid.model
    n = spg.n
    nk = len(model.speeds)
    p, q = grid.p, grid.q
    edges = sorted(spg.edges)

    x_idx: dict[tuple[int, int, int, int], int] = {}
    m_idx: dict[tuple[int, int, int], int] = {}
    c_idx: dict[tuple[int, int, str, int, int], int] = {}
    nv = 0
    for i in range(n):
        for k in range(nk):
            for u in range(p):
                for v in range(q):
                    x_idx[(i, k, u, v)] = nv
                    nv += 1
    for k in range(nk):
        for u in range(p):
            for v in range(q):
                m_idx[(k, u, v)] = nv
                nv += 1
    for (i, j) in edges:
        for d, (du, dv) in DIRS.items():
            for u in range(p):
                for v in range(q):
                    if grid.in_bounds((u + du, v + dv)):
                        c_idx[(i, j, d, u, v)] = nv
                        nv += 1

    rows_ub: list[dict[int, float]] = []
    b_ub: list[float] = []
    rows_eq: list[dict[int, float]] = []
    b_eq: list[float] = []

    def ub(row: dict[int, float], b: float) -> None:
        rows_ub.append(row)
        b_ub.append(b)

    def eq(row: dict[int, float], b: float) -> None:
        rows_eq.append(row)
        b_eq.append(b)

    def cplus(i: int, j: int, u: int, v: int) -> dict[int, float]:
        row: dict[int, float] = {}
        for d in DIRS:
            idx = c_idx.get((i, j, d, u, v))
            if idx is not None:
                row[idx] = row.get(idx, 0.0) + 1.0
        return row

    def add(row: dict[int, float], idx: int, coef: float) -> None:
        row[idx] = row.get(idx, 0.0) + coef

    # --- allocation constraints ------------------------------------------
    for i in range(n):
        eq({x_idx[(i, k, u, v)]: 1.0
            for k in range(nk) for u in range(p) for v in range(q)}, 1.0)
    # Speed activation (corrected to the per-stage form; the paper's
    # "m >= sum_i x" is infeasible as soon as two stages share a core).
    for i in range(n):
        for k in range(nk):
            for u in range(p):
                for v in range(q):
                    ub({x_idx[(i, k, u, v)]: 1.0, m_idx[(k, u, v)]: -1.0}, 0.0)
    for u in range(p):
        for v in range(q):
            ub({m_idx[(k, u, v)]: 1.0 for k in range(nk)}, 1.0)

    # --- communication start / co-location ------------------------------
    for (i, j) in edges:
        for u in range(p):
            for v in range(q):
                # If i and j share (u,v) at speed k, no comm leaves (u,v).
                for k in range(nk):
                    row = cplus(i, j, u, v)
                    add(row, x_idx[(i, k, u, v)], 1.0)
                    add(row, x_idx[(j, k, u, v)], 1.0)
                    ub(row, 2.0)
                # If i is on (u,v) and j is elsewhere, a comm must leave:
                # c+ >= sum_k x[i,k,u,v] - sum_k x[j,k,u,v].
                row = {idx: -coef for idx, coef in cplus(i, j, u, v).items()}
                for k in range(nk):
                    add(row, x_idx[(i, k, u, v)], 1.0)
                    add(row, x_idx[(j, k, u, v)], -1.0)
                ub(row, 0.0)

    # --- forwarding / stopping -------------------------------------------
    for (i, j) in edges:
        for d, (du, dv) in DIRS.items():
            for u in range(p):
                for v in range(q):
                    idx = c_idx.get((i, j, d, u, v))
                    if idx is None:
                        continue
                    uu, vv = u + du, v + dv
                    # c[d] <= c+(neighbour) + sum_k x[j,k,neighbour]
                    row = {idx: 1.0}
                    for nidx, coef in cplus(i, j, uu, vv).items():
                        add(row, nidx, -coef)
                    for k in range(nk):
                        add(row, x_idx[(j, k, uu, vv)], -1.0)
                    ub(row, 0.0)
                    # c+(neighbour) + sum_k x[j,k,neighbour] <= 2 - c[d]
                    row = {idx: 1.0}
                    for nidx, coef in cplus(i, j, uu, vv).items():
                        add(row, nidx, coef)
                    for k in range(nk):
                        add(row, x_idx[(j, k, uu, vv)], 1.0)
                    ub(row, 2.0)

    # --- cycle prevention (corrected sign, see module docstring) ----------
    for (i, j) in edges:
        for u in range(p):
            for v in range(q):
                row: dict[int, float] = {}
                for d, (du, dv) in DIRS.items():
                    # Flow entering (u,v) = flow leaving the neighbour
                    # toward (u,v): direction opposite of d from (u+du,v+dv).
                    opp = {"N": "S", "S": "N", "W": "E", "E": "W"}[d]
                    idx = c_idx.get((i, j, opp, u + du, v + dv))
                    if idx is not None:
                        add(row, idx, 1.0)
                if not row:
                    continue
                for k in range(nk):
                    add(row, x_idx[(i, k, u, v)], 1.0)
                ub(row, 1.0)

    # --- DAG-partition constraint ------------------------------------------
    desc = descendant_masks(spg)
    for i in range(n):
        for ip in range(n):
            if ip == i or not (desc[i] >> ip) & 1:
                continue
            for j in range(n):
                if j in (i, ip) or not (desc[ip] >> j) & 1:
                    continue
                for k in range(nk):
                    for u in range(p):
                        for v in range(q):
                            ub(
                                {
                                    x_idx[(i, k, u, v)]: 1.0,
                                    x_idx[(j, k, u, v)]: 1.0,
                                    x_idx[(ip, k, u, v)]: -1.0,
                                },
                                1.0,
                            )

    # --- period constraints -------------------------------------------------
    for k in range(nk):
        for u in range(p):
            for v in range(q):
                row = {
                    x_idx[(i, k, u, v)]: spg.weights[i] for i in range(n)
                }
                add(row, m_idx[(k, u, v)], -T * model.speeds[k])
                ub(row, 0.0)
    cap_bytes = model.link_capacity(T)
    for d in DIRS:
        for u in range(p):
            for v in range(q):
                row = {}
                for (i, j) in edges:
                    idx = c_idx.get((i, j, d, u, v))
                    if idx is not None:
                        add(row, idx, spg.edges[(i, j)])
                if row:
                    ub(row, cap_bytes)

    # --- objective ----------------------------------------------------------
    c_obj = np.zeros(nv)
    e_stat = model.comp_leak * T
    for (k, u, v), idx in m_idx.items():
        c_obj[idx] = e_stat
    for (i, k, u, v), idx in x_idx.items():
        s = model.speeds[k]
        c_obj[idx] = spg.weights[i] * model.dyn_power[k] / s
    for (i, j, d, u, v), idx in c_idx.items():
        c_obj[idx] = model.comm_energy(spg.edges[(i, j)])

    def densify(rows: list[dict[int, float]]) -> np.ndarray:
        A = np.zeros((len(rows), nv))
        for r, row in enumerate(rows):
            for idx, coef in row.items():
                A[r, idx] = coef
        return A

    return IlpModel(
        problem,
        c_obj,
        densify(rows_ub),
        np.array(b_ub),
        densify(rows_eq),
        np.array(b_eq),
        x_idx,
        m_idx,
        c_idx,
    )


def ilp_optimal(
    problem: ProblemInstance, max_nodes: int = 20_000
) -> tuple[Mapping, float]:
    """Solve the ILP to optimality; returns (mapping, objective energy).

    Raises :class:`HeuristicFailure` when infeasible or the node budget is
    exhausted without an incumbent.
    """
    ilp = build_ilp(problem)
    res = solve_binary_program(
        ilp.c, ilp.A_ub, ilp.b_ub, ilp.A_eq, ilp.b_eq, max_nodes=max_nodes
    )
    if res.x is None:
        raise HeuristicFailure(f"ILP: {res.status} after {res.nodes} nodes")
    return ilp.decode(res.x), res.objective
