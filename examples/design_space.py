#!/usr/bin/env python3
"""Design-space exploration: energy versus period bound and grid size.

For one workflow, sweeps the period bound across a range around the
Section-6.1.3 choice and maps it on 2x2 / 4x4 / 6x6 CMPs, reporting the
best heuristic energy at each point.  This exposes the energy/performance
trade-off that motivates the paper: tighter periods force faster speeds and
more cores, looser periods allow consolidation at low DVFS states.

Run:  python examples/design_space.py
"""

from repro import CMPGrid, ProblemInstance, streamit_workflow
from repro.experiments import choose_period, run_all
from repro.util.fmt import format_table


def main() -> None:
    app = streamit_workflow("MPEG2-noparser")
    print(f"Application: MPEG2-noparser  n={app.n}  elevation={app.ymax}\n")

    rows = []
    for p, q in [(2, 2), (4, 4), (6, 6)]:
        grid = CMPGrid(p, q)
        base = choose_period(app, grid, rng=0).period
        for factor in (1.0, 2.0, 5.0, 10.0):
            T = base * factor
            results = run_all(ProblemInstance(app, grid, T), rng=0)
            ok = {n: r for n, r in results.items() if r.ok}
            if ok:
                winner = min(ok, key=lambda n: ok[n].total_energy)
                res = ok[winner]
                rows.append([
                    f"{p}x{q}", f"{T:g}", winner,
                    f"{res.energy.total:.3f}",
                    len(res.mapping.active_cores()),
                    f"{min(res.mapping.speeds.values()) / 1e9:.2f}",
                    f"{max(res.mapping.speeds.values()) / 1e9:.2f}",
                ])
            else:
                rows.append([f"{p}x{q}", f"{T:g}", "-", "ALL FAIL", "-", "-", "-"])
    print(format_table(
        ["grid", "T [s]", "best heuristic", "E [J]", "cores",
         "min GHz", "max GHz"],
        rows,
        title="Best achievable energy across the design space",
    ))
    print("\nLooser periods let the mapper consolidate stages onto fewer,")
    print("slower cores; tighter ones spread work wide at high speed.")


if __name__ == "__main__":
    main()
