#!/usr/bin/env python3
"""Resumable, sharded sweeps through the content-addressed result store.

Walks the full shard-then-merge story on a small scenario grid:

1. a **cold** single-process sweep (the reference report);
2. an **interrupted** sweep — stopped at a deterministic cell boundary
   with ``limit=``, results checkpointed into a SQLite store;
3. a **resume** that computes only the missing cells and reproduces the
   cold report byte for byte;
4. two **shard** invocations (``0/2`` and ``1/2``) filling a second
   shared store — in real use these run as separate processes or on
   separate machines — followed by a merge pass that is 100% cache hits;
5. a peek at the **batch mapping service** answering ad-hoc solver
   requests through the same machinery.

Run:  PYTHONPATH=src python examples/sweep_resume.py
"""

import tempfile
from pathlib import Path

from repro.experiments import report_json, run_scenario_sweep, sweep_summary
from repro.store import load_requests, open_store, serve_batch
from repro.store.service import serve_summary

#: A small grid: 3 topologies x 2 replicates = 6 cells.
GRID = dict(
    topologies=("mesh", "torus", "benes"),
    sizes=("2x2",),
    ccrs=(10.0,),
    apps=("random-16",),
    replicates=2,
    seed=2011,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        db = Path(tmp) / "cells.sqlite"

        print("1) cold single-process sweep (the reference):")
        cold = run_scenario_sweep(**GRID)
        print(sweep_summary(cold), "\n")

        print("2) interrupted sweep: killed after 2 of 6 cells ...")
        run_scenario_sweep(**GRID, store=db, limit=2, checkpoint=1)
        store = open_store(db)
        print(f"   store now holds {len(store)} cells "
              f"({store.stats()['by_kind']})")
        store.close()

        print("3) resume: computes only the 4 missing cells ...")
        resumed = run_scenario_sweep(**GRID, store=db, resume=True)
        same = report_json(resumed) == report_json(cold)
        print(f"   resumed report byte-identical to cold run: {same}\n")

        print("4) shard-then-merge into a fresh store:")
        db2 = Path(tmp) / "sharded.sqlite"
        for i in range(2):
            part = run_scenario_sweep(**GRID, store=db2, shard=f"{i}/2")
            print(f"   shard {i}/2 processed "
                  f"{part['meta']['processed_instances']} cells")
        merged = run_scenario_sweep(**GRID, store=db2, resume=True)
        same = report_json(merged) == report_json(cold)
        print(f"   merged report byte-identical to cold run: {same}\n")

        print("5) batch mapping service over the store:")
        requests = load_requests([
            {"solver": "greedy", "app": "FMRadio", "size": "4x4",
             "seed": 0},
            {"solver": "dpa2d1d+refine", "app": "random-16",
             "topology": "torus", "size": "3x3", "ccr": 10.0, "seed": 1},
        ])
        service_db = Path(tmp) / "service.sqlite"
        print(serve_summary(serve_batch(requests, store=service_db)))
        print("   ... and the same batch again, all hits this time:")
        print(serve_summary(serve_batch(requests, store=service_db)))


if __name__ == "__main__":
    main()
