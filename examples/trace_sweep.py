#!/usr/bin/env python3
"""A traced scenario sweep, from recording to summary table.

Walks the observability layer end to end:

1. an **untraced** sweep (the reference report);
2. the same sweep under ``observability(trace=..., metrics=True)`` —
   every solver run, sweep cell and store access records a span, and the
   JSONL trace is written when the session closes;
3. the **out-of-band guarantee**: both reports are byte-identical —
   telemetry never touches canonical outputs;
4. ``repro trace summarize``'s per-span-kind table (count / total /
   p50 / p99) rendered straight from the recording;
5. the session **metrics registry** (counters + histograms), whose
   aggregates are identical for any ``jobs`` value.

Run:  PYTHONPATH=src python examples/trace_sweep.py
"""

import tempfile
from pathlib import Path

from repro.experiments import report_json, run_scenario_sweep
from repro.obs import observability, render_metrics, render_trace_summary

#: A small grid: 2 topologies x 2 replicates = 4 cells.
GRID = dict(
    topologies=("mesh", "torus"),
    sizes=("3x3",),
    ccrs=(10.0,),
    apps=("random-12",),
    replicates=2,
    seed=2011,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "sweep.jsonl"

        print("1) untraced sweep (the reference report) ...")
        cold = run_scenario_sweep(**GRID)

        print("2) the same sweep, traced + metered ...")
        with observability(trace=trace_path, metrics=True) as session:
            traced = run_scenario_sweep(**GRID, jobs=2)
        print(f"   trace written to {trace_path.name}")

        same = report_json(traced) == report_json(cold)
        print(f"3) traced report byte-identical to untraced run: {same}\n")

        print("4) where did the sweep spend its time?")
        print(render_trace_summary(trace_path), "\n")

        print("5) session metrics (identical for any jobs value):")
        print(render_metrics(session.metrics))


if __name__ == "__main__":
    main()
