#!/usr/bin/env python3
"""Trace analytics end to end: record, export, critical path, diff.

Builds on ``examples/trace_sweep.py`` (which stops at the summary
table) and walks the post-processing layer:

1. record two sweep traces — a small grid and a larger one, standing in
   for "before" and "after" recordings of a code change;
2. **hotspots + critical path**: self-time ranking (parents don't
   absorb their children's time) and the longest root->leaf chain;
3. **export**: Chrome trace-event JSON for chrome://tracing / Perfetto
   and collapsed stacks for flamegraph.pl / speedscope;
4. **diff**: per-kind count/total/self deltas between the recordings,
   and the ``--budget-pct`` gate that turns growth into a nonzero
   exit — the same check CI runs on its own trace.

Run:  PYTHONPATH=src python examples/trace_analysis.py
"""

import json
import tempfile
from pathlib import Path

from repro.experiments import run_scenario_sweep
from repro.obs import (
    critical_path,
    diff_regressions,
    diff_traces,
    export_trace,
    hotspots,
    load_trace,
    observability,
)

BASE = dict(
    topologies=("mesh",),
    sizes=("3x3",),
    ccrs=(10.0,),
    apps=("random-12",),
    seed=2011,
)


def record(path: Path, replicates: int) -> None:
    with observability(trace=path):
        run_scenario_sweep(**BASE, replicates=replicates)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        before = Path(tmp) / "before.jsonl"
        after = Path(tmp) / "after.jsonl"

        print("1) recording two sweep traces (1 vs 3 replicates) ...")
        record(before, replicates=1)
        record(after, replicates=3)

        _, spans = load_trace(after)
        print(f"   {len(spans)} spans in the larger recording\n")

        print("2) hotspots by self time, and the critical path:")
        for row in hotspots(spans)[:5]:
            print(
                f"   {row['kind']:<18} self {row['self_s']:.4f}s "
                f"across {row['count']} span(s)"
            )
        chain = critical_path(spans)
        print(
            "   critical path: "
            + " -> ".join(step["kind"] for step in chain)
        )
        print()

        print("3) exporting the recording:")
        chrome = Path(tmp) / "after.chrome.json"
        export_trace(after, "chrome", target=chrome)
        events = json.loads(chrome.read_text())["traceEvents"]
        print(f"   chrome trace: {len(events)} events -> {chrome.name}")
        stacks = export_trace(after, "collapsed")
        print(f"   collapsed stacks: {len(stacks.splitlines())} lines, "
              f"e.g. {stacks.splitlines()[0].rsplit(' ', 1)[0]!r}\n")

        print("4) diffing before vs after, with a growth budget:")
        diff = diff_traces(before, after)
        for row in diff["kinds"][:5]:
            print(
                f"   {row['kind']:<18} count {row['count_a']:>3} -> "
                f"{row['count_b']:>3}  total "
                f"{row['total_a_s']:.4f}s -> {row['total_b_s']:.4f}s"
            )
        over = diff_regressions(diff, budget_pct=20.0)
        print(
            f"   kinds over a 20% growth budget: "
            f"{[r['kind'] for r in over] or 'none'} "
            f"(CI exit code {1 if over else 0})"
        )


if __name__ == "__main__":
    main()
