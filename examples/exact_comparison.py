#!/usr/bin/env python3
"""Heuristics versus the exact optimum on tiny instances (Section 4.4).

The paper formulates an ILP but could not run it beyond 2x2 CMPs with
CPLEX; it leaves "an absolute measure of the quality of the heuristics" as
future work.  This example provides that measure at small scale: for a set
of tiny SPGs on a 2x2 CMP it computes

* the exhaustive optimal DAG-partition mapping (brute force, XY routing),
* the ILP optimum (branch & bound over scipy LP relaxations), and
* every heuristic's energy,

and prints the optimality gaps.

Run:  python examples/exact_comparison.py
"""

from repro import CMPGrid, ProblemInstance, random_spg
from repro.exact import brute_force_optimal, ilp_optimal
from repro.experiments import run_all
from repro.heuristics.base import PAPER_ORDER
from repro.platform.speeds import GHZ, PowerModel
from repro.util.fmt import format_table

# Two speeds keep the ILP small (the paper's CPLEX runs hit the same wall).
TWO_SPEED = PowerModel(
    speeds=(0.5 * GHZ, 1.0 * GHZ),
    dyn_power=(0.2, 1.6),
    comp_leak=0.08,
    comm_leak=0.0,
    e_bit=6e-12,
    bandwidth=16 * 1.2 * GHZ,
)


def main() -> None:
    grid = CMPGrid(2, 2, TWO_SPEED)
    rows = []
    for seed in range(4):
        g = random_spg(6, rng=seed, ccr=1.0)
        T = max(1.3 * max(g.weights) / GHZ, g.total_work / GHZ / 3)
        prob = ProblemInstance(g, grid, T)
        _bm, bf = brute_force_optimal(prob)
        _im, ilp = ilp_optimal(prob)
        row = [seed, f"{T:.3f}", f"{bf:.4f}", f"{ilp:.4f}"]
        for name in PAPER_ORDER:
            res = run_all(prob, heuristics=(name,), rng=seed)[name]
            row.append(f"{res.total_energy / bf:.3f}" if res.ok else "FAIL")
        rows.append(row)
    print(format_table(
        ["seed", "T [s]", "optimal [J]", "ILP [J]", *PAPER_ORDER],
        rows,
        title="Optimality gaps on 6-stage SPGs, 2x2 CMP "
              "(heuristic energy / optimal energy)",
    ))
    print("\nThe ILP matches the brute-force optimum; heuristic columns are")
    print("multiples of the optimum (1.000 = optimal mapping found).")


if __name__ == "__main__":
    main()
