#!/usr/bin/env python3
"""Quickstart: map one streaming application onto a CMP.

Builds the FMRadio workflow (synthesised to the paper's Table-1
characteristics), selects a period bound with the Section-6.1.3 procedure,
runs all five heuristics, and prints the winning mapping.

Run:  python examples/quickstart.py
"""

from repro import CMPGrid, ProblemInstance, choose_period, streamit_workflow
from repro.util.fmt import format_table


def main() -> None:
    app = streamit_workflow("FMRadio")
    grid = CMPGrid(4, 4)
    print(f"Application: FMRadio  n={app.n}  elevation={app.ymax} "
          f"length={app.xmax}  CCR={app.ccr:.0f}")
    print(f"Platform:    {grid.p}x{grid.q} CMP, XScale DVFS "
          f"({len(grid.model.speeds)} speeds)")

    choice = choose_period(app, grid, rng=0)
    print(f"\nChosen period bound T = {choice.period:g} s "
          f"(last power of ten before every heuristic fails)\n")

    rows = []
    best_name, best = None, None
    for name, res in choice.results.items():
        if res.ok:
            b = res.energy
            rows.append([
                name, f"{b.total:.3f}", f"{b.comp_dyn:.3f}",
                f"{b.comp_leak:.3f}", f"{b.comm_dyn * 1e3:.3f}",
                len(res.mapping.active_cores()),
            ])
            if best is None or b.total < best.energy.total:
                best_name, best = name, res
        else:
            rows.append([name, "FAIL", "-", "-", "-", "-"])
    print(format_table(
        ["heuristic", "E total [J]", "E dyn [J]", "E leak [J]",
         "E comm [mJ]", "cores"],
        rows,
        title="Energy per period, by heuristic",
    ))

    assert best is not None, "no heuristic succeeded (unexpected)"
    print(f"\nBest mapping ({best_name}) — stages per core:")
    print(best.mapping.ascii())
    print("\nCore speeds (GHz):")
    cells = {
        core: f"{s / 1e9:.2f}" for core, s in best.mapping.speeds.items()
    }
    from repro.util.fmt import format_grid

    print(format_grid(grid.p, grid.q, cells))


if __name__ == "__main__":
    main()
