#!/usr/bin/env python3
"""Bounded result stores: pluggable eviction without losing correctness.

Walks the whole bounded-store story on a small scenario grid:

1. a **cold** unbounded sweep (the reference report);
2. the same sweep into a store capped at a handful of rows
   (``eviction={"policy": "drrip", "max_rows": ...}`` — every ``put``
   over the cap evicts in policy order) — the report is *already*
   byte-identical, because eviction only forgets, never corrupts;
3. an explicit ``evict`` pass draining the store to zero rows, then a
   **resume** that recomputes the evicted cells and again reproduces
   the cold report byte for byte (the cache-correctness contract);
4. a policy **shoot-out**: the same skewed access trace replayed under
   every registered policy on a row-capped in-memory store, showing
   why the duelled ``drrip`` is the safe default.

Run:  PYTHONPATH=src python examples/bounded_store.py
"""

import hashlib
import tempfile
from pathlib import Path

from repro.experiments import report_json, run_scenario_sweep
from repro.store import (
    LogicalClock,
    MemoryStore,
    eviction_policy_names,
    open_store,
)

#: A small grid: 2 topologies x 2 replicates = 4 cells.
GRID = dict(
    topologies=("mesh", "torus"),
    sizes=("2x2",),
    ccrs=(10.0,),
    apps=("random-12",),
    replicates=2,
    seed=2011,
)


def bounded_sweep_story(db: Path) -> None:
    cold = report_json(run_scenario_sweep(**GRID))

    bounded = run_scenario_sweep(
        **GRID, store=str(db),
        eviction={"policy": "drrip", "max_rows": 2},
    )
    assert report_json(bounded) == cold
    store = open_store(str(db))
    print(f"bounded sweep: {len(store)} rows in store (cap 2), "
          f"evictions: {store.eviction_stats()}")

    # Drain it completely, then resume: evicted cells read as misses
    # and are recomputed — the consolidated report never changes.
    out = store.evict(policy="lru", max_rows=0)
    print(f"drained: evicted {out['evicted']} rows, "
          f"freed {out['freed_bytes']} bytes")
    store.close()

    resumed = run_scenario_sweep(**GRID, store=str(db), resume=True)
    assert report_json(resumed) == cold
    print("evict-then-resume report is byte-identical to the cold run")


def policy_shootout() -> None:
    """Replay one skewed trace (hot set fits the cap, universe does
    not) under every policy; hit-rate differences are pure replacement
    signal."""
    import numpy as np

    universe = [
        hashlib.sha256(f"demo-{i}".encode()).hexdigest()
        for i in range(200)
    ]
    hot, cold = universe[:20], universe[20:]
    rng = np.random.default_rng(GRID["seed"])
    trace = [
        hot[h] if p else cold[c]
        for p, h, c in zip(
            rng.random(1500) < 0.8,
            rng.integers(0, len(hot), 1500),
            rng.integers(0, len(cold), 1500),
        )
    ]

    print("\npolicy shoot-out (row cap 30, 1500 accesses, 20 hot keys):")
    for name in eviction_policy_names():
        store = MemoryStore(clock=LogicalClock())
        store.configure_eviction(name, max_rows=30)
        for key in trace:
            if store.get(key) is None:
                store.put(key, {"key": key}, kind="demo")
        acc = store.access_stats()
        rate = acc["hits"] / (acc["hits"] + acc["misses"])
        print(f"  {name:6s} hit-rate {rate:.3f} "
              f"({store.eviction_stats()['total']} evictions)")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        bounded_sweep_story(Path(tmp) / "bounded.sqlite")
    policy_shootout()


if __name__ == "__main__":
    main()
