#!/usr/bin/env python3
"""Heuristic specialisation across the StreamIt suite (paper Section 6.2.1).

Runs the five heuristics on a representative subset of the StreamIt suite —
fat high-elevation graphs, pipeline-like graphs, and mixed shapes — and
shows which heuristic family wins where, mirroring the structure of the
paper's Figure 8:

* DPA1D / DPA2D1D win on long pipeline-like graphs (DCT, FFT, TDE, Serpent)
* DPA2D wins on fat graphs of large elevation (ChannelVocoder, Filterbank)
* DPA1D *fails* on high-elevation graphs (state-space explosion)
* Greedy is robust but rarely the best.

Run:  python examples/streamit_study.py [--full]
"""

import sys

from repro import CMPGrid
from repro.experiments import run_streamit_experiment

# A shape-diverse subset (Table-1 indices); --full runs all 12 workflows.
SUBSET = (2, 3, 6, 7, 9, 11)


def main() -> None:
    workflows = None if "--full" in sys.argv else SUBSET
    grid = CMPGrid(4, 4)
    exp = run_streamit_experiment(
        grid, ccrs=(None, 1.0), workflows=workflows, seed=0
    )
    print(exp.render())

    print("\nReading guide: 1.0 marks the winning heuristic per row; FAIL")
    print("entries are counted in the failure table (paper Table 2).")
    print("Note how DPA1D fails on ymax>=12 workflows while DPA2D fails on")
    print("ymax<=2 pipelines -- the paper's central specialisation result.")


if __name__ == "__main__":
    main()
